//! # gq-core — the query engine facade
//!
//! Ties the reproduction together: parse (gq-calculus) → normalize into
//! canonical form (gq-rewrite, §2) → translate (gq-translate, §3) →
//! evaluate (gq-algebra / gq-pipeline).
//!
//! * [`QueryEngine`] evaluates text queries under a chosen [`Strategy`]
//!   (the paper's improved method, the classical Codd-style baseline, or
//!   the Fig. 1 nested-loop baseline) and reports [`QueryResult`]s with
//!   operation counts.
//! * [`QueryEngine::explain`] renders both processing phases for a query.
//! * [`ConstraintSet`] checks general integrity constraints — the paper's
//!   motivating application — reporting violation witnesses.
//!
//! ```
//! use gq_core::{QueryEngine, Strategy};
//! use gq_storage::{tuple, Database, Schema};
//!
//! let mut db = Database::new();
//! db.create_relation("student", Schema::new(vec!["name"])?)?;
//! db.create_relation("attends", Schema::new(vec!["student", "lecture"])?)?;
//! db.insert("student", tuple!["ann"])?;
//! db.insert("student", tuple!["bob"])?;
//! db.insert("attends", tuple!["ann", "db"])?;
//! db.insert("attends", tuple!["ann", "os"])?;
//! db.insert("attends", tuple!["bob", "db"])?;
//!
//! let engine = QueryEngine::new(db);
//!
//! // Who attends every lecture that bob attends? (∀ without division —
//! // Proposition 4 case 4.)
//! let result = engine.query(
//!     "student(x) & !(exists y. attends(\"bob\",y) & !attends(x,y))",
//! )?;
//! assert_eq!(result.len(), 2); // ann and bob
//!
//! // The three strategies agree:
//! for s in Strategy::ALL {
//!     let r = engine.query_with("exists x. student(x) & attends(x,\"os\")", s)?;
//!     assert!(r.is_true());
//! }
//! # Ok::<(), gq_core::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod constraints;
mod engine;
mod error;
mod explain;
mod ivm;
mod plan_cache;
mod views;

pub use constraints::{Constraint, ConstraintReport, ConstraintSet};
pub use engine::{
    DbMut, EngineOptions, PreparedQuery, QueryEngine, QueryResult, Snapshot, Strategy,
};
pub use error::EngineError;
pub use gq_algebra::ExecConfig;
pub use gq_calculus::{parse_program, Program, RecursiveDef};
pub use gq_governor::{CancelToken, GovernorError, QueryLimits, Resource, SharedBudget};
pub use gq_obs::{Event, EventKind, Journal, MetricsSnapshot, SlowLog, SlowLogEntry, WindowStats};
pub use ivm::MaintenanceStrategy;
pub use plan_cache::{PlanCacheStats, DEFAULT_PLAN_CACHE_CAPACITY};
pub use views::{View, ViewError, ViewRegistry};
