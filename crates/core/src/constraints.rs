//! Integrity-constraint checking — the paper's motivating application
//! ("Database applications often require to evaluate queries containing
//! quantifiers or disjunctions, e.g., for handling general integrity
//! constraints").
//!
//! Constraints are closed formulas that must hold. Checking uses the
//! improved translation with short-circuiting emptiness tests; for a
//! violated universal constraint `∀x̄ R ⇒ F` the checker also reports the
//! *witnesses* — the answers of the open query `R ∧ ¬F`.

use crate::{EngineError, QueryEngine, Strategy};
use gq_calculus::{parse, Formula, Var};
use gq_storage::Relation;

/// A registered integrity constraint.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Unique name.
    pub name: String,
    /// The closed formula that must hold.
    pub formula: Formula,
}

/// The outcome of checking one constraint.
#[derive(Debug, Clone)]
pub struct ConstraintReport {
    /// Constraint name.
    pub name: String,
    /// Does the constraint hold?
    pub satisfied: bool,
    /// For a violated `∀x̄ R ⇒ F` constraint: the violating bindings
    /// (answers of `R ∧ ¬F`) and their variables.
    pub witnesses: Option<(Vec<Var>, Relation)>,
}

/// A set of named constraints checked against an engine's database.
#[derive(Debug, Default)]
pub struct ConstraintSet {
    constraints: Vec<Constraint>,
}

impl ConstraintSet {
    /// An empty set.
    pub fn new() -> Self {
        ConstraintSet::default()
    }

    /// Register a constraint from query text. The formula must be closed.
    pub fn add(&mut self, name: impl Into<String>, text: &str) -> Result<(), EngineError> {
        let name = name.into();
        if self.constraints.iter().any(|c| c.name == name) {
            return Err(EngineError::DuplicateConstraint(name));
        }
        let formula = parse(text)?;
        let free = formula.free_vars();
        if !free.is_empty() {
            return Err(EngineError::ConstraintNotClosed {
                name,
                free: free.iter().map(|v| v.name().to_string()).collect(),
            });
        }
        self.constraints.push(Constraint { name, formula });
        Ok(())
    }

    /// Registered constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Check one constraint by name.
    pub fn check(&self, name: &str, engine: &QueryEngine) -> Result<ConstraintReport, EngineError> {
        let c = self
            .constraints
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| EngineError::UnknownConstraint(name.to_string()))?;
        check_one(c, engine)
    }

    /// Check every constraint; reports come back in registration order.
    pub fn check_all(&self, engine: &QueryEngine) -> Result<Vec<ConstraintReport>, EngineError> {
        self.constraints
            .iter()
            .map(|c| check_one(c, engine))
            .collect()
    }
}

fn check_one(c: &Constraint, engine: &QueryEngine) -> Result<ConstraintReport, EngineError> {
    let result = engine.eval_formula(&c.formula, Strategy::Improved)?;
    let satisfied = result.is_true();
    let witnesses = if satisfied {
        None
    } else {
        violation_witnesses(&c.formula, engine)?
    };
    Ok(ConstraintReport {
        name: c.name.clone(),
        satisfied,
        witnesses,
    })
}

/// For `∀x̄ R ⇒ F`, the violating bindings are the answers of `R ∧ ¬F`;
/// for `∀x̄ ¬R`, they are the answers of `R`; for `¬∃x̄ B`, the answers of
/// `B`. Other shapes yield no witness query.
fn violation_witnesses(
    f: &Formula,
    engine: &QueryEngine,
) -> Result<Option<(Vec<Var>, Relation)>, EngineError> {
    let witness_query = match f {
        Formula::Forall(_, body) => match &**body {
            Formula::Implies(r, inner) => {
                Some(Formula::and((**r).clone(), Formula::not((**inner).clone())))
            }
            Formula::Not(r) => Some((**r).clone()),
            _ => None,
        },
        Formula::Not(inner) => match &**inner {
            Formula::Exists(_, body) => Some((**body).clone()),
            _ => None,
        },
        _ => None,
    };
    match witness_query {
        None => Ok(None),
        Some(q) => {
            let result = engine.eval_formula(&q, Strategy::Improved)?;
            Ok(Some((result.vars, result.answers)))
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gq_storage::{tuple, Database, Schema};

    fn engine() -> QueryEngine {
        let mut db = Database::new();
        db.create_relation("employee", Schema::new(vec!["name"]).unwrap())
            .unwrap();
        db.create_relation("salary", Schema::new(vec!["name", "amount"]).unwrap())
            .unwrap();
        db.create_relation("manager", Schema::new(vec!["name"]).unwrap())
            .unwrap();
        for n in ["ann", "bob", "eve"] {
            db.insert("employee", tuple![n]).unwrap();
        }
        db.insert("salary", tuple!["ann", 100]).unwrap();
        db.insert("salary", tuple!["bob", 80]).unwrap();
        // eve has no salary → violates the every-employee-has-a-salary
        // constraint.
        db.insert("manager", tuple!["ann"]).unwrap();
        QueryEngine::new(db)
    }

    #[test]
    fn satisfied_constraint() {
        let e = engine();
        let mut cs = ConstraintSet::new();
        cs.add(
            "managers-are-employees",
            "forall x. manager(x) -> employee(x)",
        )
        .unwrap();
        let r = cs.check("managers-are-employees", &e).unwrap();
        assert!(r.satisfied);
        assert!(r.witnesses.is_none());
    }

    #[test]
    fn violated_constraint_reports_witnesses() {
        let e = engine();
        let mut cs = ConstraintSet::new();
        cs.add(
            "every-employee-paid",
            "forall x. employee(x) -> exists a. salary(x,a)",
        )
        .unwrap();
        let r = cs.check("every-employee-paid", &e).unwrap();
        assert!(!r.satisfied);
        let (vars, witnesses) = r.witnesses.unwrap();
        assert_eq!(vars.len(), 1);
        assert_eq!(witnesses.sorted_tuples(), vec![tuple!["eve"]]);
    }

    #[test]
    fn check_all_in_order() {
        let e = engine();
        let mut cs = ConstraintSet::new();
        cs.add("a", "forall x. manager(x) -> employee(x)").unwrap();
        cs.add("b", "forall x. employee(x) -> exists a. salary(x,a)")
            .unwrap();
        let reports = cs.check_all(&e).unwrap();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].satisfied && !reports[1].satisfied);
    }

    #[test]
    fn rejects_open_and_duplicate() {
        let mut cs = ConstraintSet::new();
        assert!(matches!(
            cs.add("open", "employee(x)"),
            Err(EngineError::ConstraintNotClosed { .. })
        ));
        cs.add("c", "forall x. !(manager(x) & !employee(x))")
            .unwrap();
        assert!(matches!(
            cs.add("c", "forall x. !manager(x)"),
            Err(EngineError::DuplicateConstraint(_))
        ));
        assert!(matches!(
            cs.check("ghost", &engine()),
            Err(EngineError::UnknownConstraint(_))
        ));
    }

    #[test]
    fn negated_existential_constraint_witnesses() {
        let e = engine();
        let mut cs = ConstraintSet::new();
        // "no manager earns 100" — violated by ann.
        cs.add(
            "no-rich-managers",
            "!(exists x. manager(x) & salary(x,100))",
        )
        .unwrap();
        let r = cs.check("no-rich-managers", &e).unwrap();
        assert!(!r.satisfied);
        let (_, w) = r.witnesses.unwrap();
        assert_eq!(w.len(), 1);
    }
}
