//! The query engine: parse → normalize → translate → evaluate, with a
//! prepared-query plan cache skipping the first three phases on repeats.

use crate::plan_cache::{CompiledKind, CompiledPlan, PlanCache, PlanCacheStats, PlanKey};
use crate::EngineError;
use gq_algebra::{Evaluator, ExecConfig, ExecStats, PipelineEvent, PipelineHook, PlanProfiler};
use gq_calculus::{alpha_canonical, parse, parse_program, Formula, RecursiveDef, Var};
use gq_governor::{
    CancelToken, Governor, GovernorError, QueryLimits, Resource, SharedBudget, TripHook,
};
use gq_obs::{
    EventData, EventKind, Journal, MetricsSnapshot, PipelineSpan, QueryTrace, Registry, SlowLog,
    SlowLogEntry, SpanGuard, TraceBuilder,
};
use gq_pipeline::{LoopProfiler, PipelineEvaluator};
use gq_rewrite::{canonicalize_governed, canonicalize_traced_governed};
use gq_storage::{
    CheckpointStats, Database, DurabilityStats, DurableDatabase, MutationDelta, RecoveryStats,
    Relation, Schema, StorageError, Tuple,
};
use gq_translate::{ClassicalTranslator, ImprovedTranslator, PlanShape};
use std::rc::Rc;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Instant;

/// The evaluation strategy for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// The paper's method: canonical form + improved algebraic translation
    /// (complement-joins, constrained outer-joins, emptiness tests).
    #[default]
    Improved,
    /// The Codd-style classical translation (prenex + cartesian product of
    /// ranges + divisions). Runs on the *raw* query, as the classical
    /// methods do.
    Classical,
    /// The Fig. 1 one-tuple-at-a-time nested-loop interpreter, over the
    /// canonical form.
    NestedLoop,
}

impl Strategy {
    /// All strategies, for sweeps.
    pub const ALL: [Strategy; 3] = [
        Strategy::Improved,
        Strategy::Classical,
        Strategy::NestedLoop,
    ];

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Improved => "improved",
            Strategy::Classical => "classical",
            Strategy::NestedLoop => "nested-loop",
        }
    }
}

/// The result of a query: answer variables, answer relation, and the
/// execution statistics backing the paper's operation-count claims.
///
/// A closed (yes/no) query yields a 0-ary relation holding the empty tuple
/// iff the answer is *yes* — use [`QueryResult::is_true`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Answer variables in column order (empty for closed queries).
    pub vars: Vec<Var>,
    /// The answer relation.
    pub answers: Relation,
    /// Operation counts accumulated during evaluation.
    pub stats: ExecStats,
}

impl QueryResult {
    /// For closed queries: was the answer yes?
    pub fn is_true(&self) -> bool {
        !self.answers.is_empty()
    }

    /// Number of answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Is the answer set empty?
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }
}

/// Evaluation options orthogonal to the [`Strategy`]: post-translation
/// plan optimization and shared-subplan caching. Both apply to the
/// algebraic strategies only (the nested-loop interpreter has no plans).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineOptions {
    /// Apply the rule-based plan optimizer (selection/projection pushdown,
    /// product-to-join conversion) after translation.
    pub optimize: bool,
    /// Evaluate repeated subplans once (the §2.2 sharing discussion).
    pub share_subplans: bool,
    /// Apply the Domain Closure Assumption (§2.1): quantified or free
    /// variables without a covering range get an explicit `dom(x)` range
    /// over the materialized database domain. Requires
    /// [`QueryEngine::refresh_domain_view`] to have been called.
    pub domain_closure: bool,
    /// Probe persistent per-relation hash indexes (built lazily, cached
    /// across queries, invalidated by [`QueryEngine::db_mut`]).
    pub use_base_indexes: bool,
    /// Common-subexpression elimination: fingerprint the compiled plan's
    /// repeated interior subplans at compile time and evaluate each once
    /// into an `Arc`-shared operand. Unlike `share_subplans` (which only
    /// catches build sides that happen to materialize), this shares *any*
    /// repeated subplan, streaming entry points included, and its
    /// `cse_materialized`/`cse_reused` counters are bit-identical across
    /// thread counts.
    pub cse: bool,
    /// Stream batches through push-based pipelines, materializing only at
    /// pipeline breakers (on by default). Off, every operator of a
    /// parallel plan materializes its full output — the legacy executor,
    /// kept as the peak-memory baseline (`gq-bench`'s E-STREAM table) and
    /// an A/B switch (`.stream off` in the REPL). Answers, order, and
    /// `ExecStats::without_dispatch_counters` are bit-identical either
    /// way; only the peak intermediate watermarks differ.
    pub streaming: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            optimize: false,
            share_subplans: false,
            domain_closure: false,
            use_base_indexes: false,
            cse: false,
            streaming: true,
        }
    }
}

/// The catalog behind a [`QueryEngine`]: either a plain in-memory
/// [`Database`] or a [`DurableDatabase`] whose mutations are WAL-logged
/// and crash-recoverable. Reads are identical either way; the engine's
/// typed mutation methods route through the durable commit protocol when
/// one is attached.
enum Store {
    Plain(Database),
    Durable(Box<DurableDatabase>),
}

impl Store {
    fn db(&self) -> &Database {
        match self {
            Store::Plain(db) => db,
            Store::Durable(d) => d.db(),
        }
    }

    fn db_mut(&mut self) -> &mut Database {
        match self {
            Store::Plain(db) => db,
            Store::Durable(d) => d.db_mut_volatile(),
        }
    }
}

/// An immutable, epoch-stamped view of the catalog, pinned at the start
/// of a query. Cloning is one refcount bump; the snapshot stays fully
/// readable (and internally consistent) while writers commit newer
/// epochs through the engine. Dereferences to [`Database`].
#[derive(Debug, Clone)]
pub struct Snapshot(Arc<Database>);

impl std::ops::Deref for Snapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.0
    }
}

/// Exclusive mutable access to the catalog, returned by
/// [`QueryEngine::db_mut`]. Dereferences to [`Database`]; when the guard
/// drops, the mutated catalog is republished as the engine's read
/// snapshot and superseded cached base-relation indexes are discarded.
/// Readers keep their pinned snapshots — they never observe the
/// mutation mid-flight.
pub struct DbMut<'a> {
    engine: &'a QueryEngine,
    guard: MutexGuard<'a, Store>,
}

impl std::ops::Deref for DbMut<'_> {
    type Target = Database;

    fn deref(&self) -> &Database {
        self.guard.db()
    }
}

impl std::ops::DerefMut for DbMut<'_> {
    fn deref_mut(&mut self) -> &mut Database {
        self.guard.db_mut()
    }
}

impl Drop for DbMut<'_> {
    fn drop(&mut self) {
        // Raw catalog access captured no deltas — re-derive every
        // materialized extent from scratch before republishing.
        self.engine.recompute_matviews(&mut self.guard);
        self.engine.publish(&self.guard);
    }
}

/// The query engine over an in-memory database.
///
/// Internally split MVCC-style for concurrent serving (`gq-server`):
/// writers serialize on a store lock and commit through the WAL when
/// durable; each committed state is republished as an immutable,
/// epoch-stamped [`Snapshot`] that readers pin once per query. The
/// engine is `Send + Sync`, so sessions on different threads can share
/// one `Arc<QueryEngine>` — reads never block reads, and a reader never
/// observes a half-applied write.
pub struct QueryEngine {
    /// Writer side: the authoritative catalog (plus WAL when durable).
    /// Every mutation serializes on this lock and holds it across the
    /// durable commit point.
    store: Mutex<Store>,
    /// Reader side: the published snapshot — a cheap COW clone of the
    /// catalog (relation payloads are shared `Arc`s), swapped in *after*
    /// each committed mutation, never mutated in place.
    snapshot: RwLock<Arc<Database>>,
    index_cache: gq_algebra::IndexCache,
    views: crate::views::ViewRegistry,
    /// Materialized views (incl. recursive groups) in maintenance order;
    /// extents live in the catalog under the view's own name and are
    /// patched at every mutation commit, before the snapshot republish.
    matviews: crate::ivm::MaterializedViews,
    metrics: Registry,
    exec: ExecConfig,
    /// Per-query resource budgets (unlimited by default); snapshotted
    /// into a fresh [`Governor`] at the start of every query.
    limits: QueryLimits,
    /// The shared cancel token handed to every query's governor. Stays
    /// set after a cancellation until [`CancelToken::reset`] is called.
    cancel: CancelToken,
    /// Compiled plans of prepared queries, keyed by α-canonical formula,
    /// strategy, options, catalog epoch and view generation. Consulted
    /// only by the prepared-query entry points ([`QueryEngine::prepare`] /
    /// [`QueryEngine::execute`]); ad-hoc queries always compile fresh.
    plan_cache: PlanCache,
    /// The flight recorder: a bounded ring of lifecycle events (query
    /// start/end, plan-cache hit/miss, governor trips, WAL/checkpoint
    /// activity). Enabled at engine construction — "always on" — and
    /// switchable off at runtime, at which point every record site is a
    /// single relaxed load.
    journal: Arc<Journal>,
    /// The slow-query log: full traces + governor watermarks, retained
    /// only for queries breaching its thresholds. Disarmed by default
    /// (queries are then not traced at all).
    slow_log: Arc<SlowLog>,
}

/// Window size (completed queries) for
/// [`QueryEngine::metrics_snapshot`]'s rolling aggregates.
const METRICS_WINDOW: usize = 128;

/// A parsed query bound to a strategy and options, executable repeatedly
/// via [`QueryEngine::execute`] through the engine's plan cache.
///
/// Holds no borrow of the engine, so the database can be mutated between
/// executions — the catalog epoch in the cache key makes the next
/// execution recompile against the new catalog automatically.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    text: String,
    formula: Formula,
    strategy: Strategy,
    options: EngineOptions,
}

impl PreparedQuery {
    /// The original query text.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The strategy this query was prepared for.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The options this query was prepared with.
    pub fn options(&self) -> EngineOptions {
        self.options
    }
}

impl QueryEngine {
    /// Wrap a database. Execution defaults to [`ExecConfig::default`]:
    /// morsel-driven parallel kernels sized to the host's available
    /// parallelism (a single-core host gets the sequential path).
    pub fn new(db: Database) -> Self {
        Self::with_store(Store::Plain(db))
    }

    /// Wrap an already-open [`DurableDatabase`]: every typed mutation
    /// ([`QueryEngine::create_relation`], [`QueryEngine::insert`], …) is
    /// WAL-logged and fsynced before it becomes visible.
    pub fn from_durable(db: DurableDatabase) -> Self {
        Self::with_store(Store::Durable(Box::new(db)))
    }

    /// Open (or initialize) a durable database directory and wrap it.
    /// Recovery replays the WAL over the last good snapshot, truncating
    /// any torn tail; the returned [`RecoveryStats`] says what happened.
    /// The recovered catalog's epoch resumes past the WAL high-water
    /// mark, so the (fresh) plan cache can never key a plan to an epoch
    /// the pre-crash catalog already used.
    pub fn open_durable(dir: &std::path::Path) -> Result<(Self, RecoveryStats), EngineError> {
        let (db, recovery) = DurableDatabase::open(dir)?;
        let engine = Self::from_durable(db);
        engine.journal.record(|| {
            EventData::new(EventKind::Recovery, 0, "durable").detail(format!(
                "{} records replayed, generation {}, epoch {}{}",
                recovery.wal_records_replayed,
                recovery.generation,
                recovery.recovered_epoch,
                if recovery.torn_bytes > 0 {
                    ", torn tail truncated"
                } else {
                    ""
                }
            ))
        });
        Ok((engine, recovery))
    }

    fn with_store(store: Store) -> Self {
        let journal = Arc::new(Journal::default());
        journal.enable();
        let snapshot = RwLock::new(Arc::new(store.db().clone()));
        QueryEngine {
            store: Mutex::new(store),
            snapshot,
            index_cache: gq_algebra::IndexCache::new(),
            views: crate::views::ViewRegistry::new(),
            matviews: crate::ivm::MaterializedViews::default(),
            metrics: Registry::new(),
            exec: ExecConfig::default(),
            limits: QueryLimits::UNLIMITED,
            cancel: CancelToken::new(),
            plan_cache: PlanCache::default(),
            journal,
            slow_log: Arc::new(SlowLog::default()),
        }
    }

    /// Builder-style plan-cache capacity override (entries, min 1).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache = PlanCache::with_capacity(capacity);
        self
    }

    /// Builder-style [`QueryLimits`] override: every subsequent query
    /// runs under these budgets.
    pub fn with_limits(mut self, limits: QueryLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Change the per-query limits in place (REPL `.timeout`/`.limits`).
    pub fn set_limits(&mut self, limits: QueryLimits) {
        self.limits = limits;
    }

    /// The current per-query limits.
    pub fn limits(&self) -> QueryLimits {
        self.limits
    }

    /// A handle to the engine's cancel token. Calling
    /// [`CancelToken::cancel`] on it (e.g. from a signal-handler thread)
    /// makes the in-flight query unwind with [`EngineError::Cancelled`]
    /// at its next cooperative check point; the flag persists — failing
    /// subsequent queries immediately — until [`CancelToken::reset`].
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Builder-style [`ExecConfig`] override (thread count, morsel size).
    pub fn with_exec_config(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }

    /// Change the execution configuration in place (REPL `.threads`).
    pub fn set_exec_config(&mut self, exec: ExecConfig) {
        self.exec = exec;
    }

    /// The current execution configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec
    }

    /// The engine-lifetime metrics registry: per-strategy query counts and
    /// latency histograms, recorded only while enabled
    /// ([`Registry::enable`]). Disabled (the default), query evaluation
    /// performs one relaxed atomic load and no timing syscalls.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// A [`MetricsSnapshot`] joined with the flight recorder's rolling
    /// window over the last 128-or-fewer completed queries (p50/p99
    /// latency, plan-cache hit rate, governor trips). The window is
    /// `None` when the journal has seen no completions.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let window = self.journal.window_stats(METRICS_WINDOW);
        if window.queries > 0 {
            snap.window = Some(window);
        }
        snap
    }

    /// The flight recorder. Enabled from construction; disable it
    /// ([`Journal::disable`]) to make every record site a single relaxed
    /// atomic load. The `Arc` can be cloned for out-of-band readers
    /// (REPL export, monitoring threads).
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// The slow-query log. Disarmed by default; arm it with
    /// [`SlowLog::set_latency_threshold`] /
    /// [`SlowLog::set_tuple_threshold`] and breaching queries retain
    /// their full [`QueryTrace`] plus governor watermarks.
    pub fn slow_log(&self) -> &Arc<SlowLog> {
        &self.slow_log
    }

    /// Define a view: a named open query usable as an atom in later
    /// queries (Definition 1 allows views as ranges). The body's free
    /// variables, in name order, are the view's columns. Every relation
    /// the body references must already exist (as a catalog relation or
    /// an earlier view) — unresolvable names fail here with
    /// [`ViewError::UnknownRelation`](crate::views::ViewError), not at
    /// first query.
    pub fn define_view(&self, name: impl Into<String>, text: &str) -> Result<(), EngineError> {
        let name = name.into();
        if self.matviews.contains(&name) {
            return Err(EngineError::View(crate::views::ViewError::Duplicate(name)));
        }
        self.views.define(name, text, &self.snapshot())
    }

    /// The registered views.
    pub fn views(&self) -> &crate::views::ViewRegistry {
        &self.views
    }

    /// Define a *materialized* view: like [`QueryEngine::define_view`],
    /// but the answer set is evaluated once and stored as a catalog
    /// relation under the view's name, then kept in sync incrementally —
    /// every committed mutation routes its delta through the view's
    /// delta plan and patches the stored extent before the snapshot
    /// republish. Queries use it like any relation; its columns are the
    /// body's free variables in name order.
    ///
    /// On a durable engine the extent is *volatile* (recomputed state,
    /// not WAL-logged): after recovery, re-define the view.
    pub fn define_materialized_view(
        &self,
        name: impl Into<String>,
        text: &str,
    ) -> Result<(), EngineError> {
        self.define_materialized_view_with(name, text, crate::ivm::MaintenanceStrategy::Incremental)
    }

    /// [`QueryEngine::define_materialized_view`] with an explicit
    /// maintenance strategy ([`MaintenanceStrategy::Recompute`]
    /// re-evaluates the full plan after every relevant mutation — the
    /// baseline the E-IVM bench compares against).
    pub fn define_materialized_view_with(
        &self,
        name: impl Into<String>,
        text: &str,
        strategy: crate::ivm::MaintenanceStrategy,
    ) -> Result<(), EngineError> {
        let name = name.into();
        let formula = parse(text)?;
        let mut store = self.store_lock();
        self.check_view_name_free(&name, store.db())?;
        let (_, expanded) = self.views.expand_with_generation(&formula)?;
        for referenced in expanded.relation_names() {
            if !store.db().has_relation(referenced) {
                return Err(EngineError::View(
                    crate::views::ViewError::UnknownRelation {
                        view: name,
                        relation: referenced.to_string(),
                    },
                ));
            }
        }
        if expanded.is_closed() {
            return Err(EngineError::View(crate::views::ViewError::ClosedBody(name)));
        }
        let governor = self.start_governor(0);
        let (vars, plan, mut extent) = {
            let db = store.db();
            let canonical = self.normalize(&expanded, &governor, None)?;
            let tr = ImprovedTranslator::new(db).with_governor(governor.clone());
            let (vars, plan) = tr.translate_open(&canonical)?;
            let ev = Evaluator::new(db).with_governor(governor.clone());
            let extent = ev.eval(&plan)?;
            (vars, plan, extent)
        };
        extent.set_name(&name);
        let tuples = extent.len();
        store.db_mut().add_relation(extent)?;
        let reads = crate::ivm::plan_reads(&plan);
        self.journal.record(|| {
            EventData::new(EventKind::IvmDefine, 0, "ivm").detail(format!(
                "view `{name}` ({} columns, {} reads) materialized: {tuples} tuples, {}",
                vars.len(),
                reads.len(),
                strategy.name(),
            ))
        });
        self.matviews
            .extend(vec![crate::ivm::Unit::Single(crate::ivm::MatView {
                name,
                vars,
                plan,
                reads,
                strategy,
            })]);
        self.publish(&store);
        Ok(())
    }

    /// Define a batch of (mutually) recursive materialized views — the
    /// engine surface behind `with recursive`. The definitions are
    /// stratified by SCC decomposition of their dependency graph;
    /// recursion through negation, complement-join, a division's
    /// divisor, an outer-join's padded side, or an aggregate is rejected
    /// with [`ViewError::UnstratifiedRecursion`](crate::views::ViewError).
    /// Each SCC's extents are computed by a semi-naive fixpoint whose
    /// rounds are governor-checked against the engine's
    /// [`QueryLimits`], so a runaway recursion trips cleanly with
    /// [`EngineError::ResourceExhausted`] instead of hanging — and
    /// nothing is registered.
    pub fn define_recursive(&self, defs: &[RecursiveDef]) -> Result<(), EngineError> {
        self.define_recursive_with(defs, crate::ivm::MaintenanceStrategy::Incremental)
    }

    /// [`QueryEngine::define_recursive`] with an explicit maintenance
    /// strategy for the defined views.
    pub fn define_recursive_with(
        &self,
        defs: &[RecursiveDef],
        strategy: crate::ivm::MaintenanceStrategy,
    ) -> Result<(), EngineError> {
        use crate::views::ViewError;
        if defs.is_empty() {
            return Ok(());
        }
        let mut store = self.store_lock();
        // Validate names and parameter lists before touching anything.
        let mut seen = std::collections::BTreeSet::new();
        for def in defs {
            if !seen.insert(def.name.as_str()) {
                return Err(EngineError::View(ViewError::Duplicate(def.name.clone())));
            }
            self.check_view_name_free(&def.name, store.db())?;
            let mut params = std::collections::BTreeSet::new();
            for p in &def.params {
                if !params.insert(p.clone()) {
                    return Err(EngineError::View(ViewError::BadRecursiveDef {
                        view: def.name.clone(),
                        detail: format!("duplicate parameter `{p}`"),
                    }));
                }
            }
            let free = def.body.free_vars();
            if free != params {
                return Err(EngineError::View(ViewError::BadRecursiveDef {
                    view: def.name.clone(),
                    detail: format!(
                        "parameters ({}) must be exactly the body's free variables ({})",
                        def.params
                            .iter()
                            .map(|v| v.name())
                            .collect::<Vec<_>>()
                            .join(", "),
                        free.iter().map(|v| v.name()).collect::<Vec<_>>().join(", "),
                    ),
                }));
            }
        }
        // Compile against a working catalog that already has every
        // member's (empty) extent registered, so bodies can reference
        // each other; nothing is written back unless the whole batch
        // succeeds.
        let mut working = store.db().clone();
        for def in defs {
            working.add_relation(Relation::named_intermediate(&def.name, def.params.len()))?;
        }
        let governor = self.start_governor(0);
        let mut compiled = Vec::with_capacity(defs.len());
        for def in defs {
            let (_, expanded) = self.views.expand_with_generation(&def.body)?;
            for referenced in expanded.relation_names() {
                if !working.has_relation(referenced) {
                    return Err(EngineError::View(ViewError::UnknownRelation {
                        view: def.name.clone(),
                        relation: referenced.to_string(),
                    }));
                }
            }
            let canonical = self.normalize(&expanded, &governor, None)?;
            let tr = ImprovedTranslator::new(&working).with_governor(governor.clone());
            let (vars, plan) = tr.translate_open(&canonical)?;
            // The extent's columns are the *declared* parameters, in
            // order; reorder the plan's output (free vars in name order)
            // to match.
            let positions: Vec<usize> = def
                .params
                .iter()
                .map(|p| {
                    vars.iter().position(|v| v == p).ok_or_else(|| {
                        EngineError::View(ViewError::BadRecursiveDef {
                            view: def.name.clone(),
                            detail: format!("parameter `{p}` unbound in the translated plan"),
                        })
                    })
                })
                .collect::<Result<_, _>>()?;
            let identity =
                positions.iter().enumerate().all(|(i, &p)| i == p) && positions.len() == vars.len();
            let plan = if identity {
                plan
            } else {
                plan.project(positions)
            };
            let reads = crate::ivm::plan_reads(&plan);
            compiled.push(crate::ivm::MatView {
                name: def.name.clone(),
                vars: def.params.clone(),
                plan,
                reads,
                strategy,
            });
        }
        let units = crate::ivm::stratify(compiled).map_err(EngineError::View)?;
        // Evaluate extents unit by unit in dependency order.
        let mut on_round = self.ivm_round_hook();
        for unit in &units {
            match unit {
                crate::ivm::Unit::Single(v) => {
                    let mut fresh = {
                        let ev = Evaluator::new(&working).with_governor(governor.clone());
                        ev.eval(&v.plan)?
                    };
                    fresh.set_name(&v.name);
                    working.replace_relation(fresh);
                }
                crate::ivm::Unit::Recursive(group) => {
                    let mut rounds = 0u64;
                    crate::ivm::fixpoint(
                        &mut working,
                        group,
                        &governor,
                        &mut on_round,
                        &mut rounds,
                    )?;
                }
            }
        }
        for unit in &units {
            for m in unit.members() {
                let tuples = working.relation(&m.name).map(Relation::len).unwrap_or(0);
                let recursive = matches!(unit, crate::ivm::Unit::Recursive(_));
                self.journal.record(|| {
                    EventData::new(EventKind::IvmDefine, 0, "ivm").detail(format!(
                        "view `{}` ({}) materialized: {tuples} tuples, {}",
                        m.name,
                        if recursive { "recursive" } else { "stratified" },
                        m.strategy.name(),
                    ))
                });
            }
        }
        *store.db_mut() = working;
        self.matviews.extend(units);
        self.publish(&store);
        Ok(())
    }

    /// Parse and run a `with recursive` program: `with recursive
    /// name(params) as (body), … in query`. The definitions are
    /// registered as recursive materialized views (see
    /// [`QueryEngine::define_recursive`] — already-defined names error
    /// with `Duplicate`), then the trailing query runs normally. A plain
    /// formula without a `with recursive` prelude is just evaluated.
    pub fn query_program(&self, text: &str) -> Result<QueryResult, EngineError> {
        self.query_program_with(text, Strategy::Improved, EngineOptions::default())
    }

    /// [`QueryEngine::query_program`] with an explicit strategy and
    /// options for the trailing query (definitions always fixpoint under
    /// the engine's limits).
    pub fn query_program_with(
        &self,
        text: &str,
        strategy: Strategy,
        options: EngineOptions,
    ) -> Result<QueryResult, EngineError> {
        let program = parse_program(text)?;
        if !program.defs.is_empty() {
            self.define_recursive(&program.defs)?;
        }
        self.eval_formula_with_options(&program.query, strategy, options)
    }

    /// `(name, columns, strategy name, recursive?)` for every registered
    /// materialized view, in maintenance order.
    pub fn materialized_views(&self) -> Vec<(String, Vec<String>, &'static str, bool)> {
        self.matviews
            .describe()
            .into_iter()
            .map(|(name, cols, strategy, recursive)| (name, cols, strategy.name(), recursive))
            .collect()
    }

    /// A name for a new view must collide with neither a catalog
    /// relation nor a registered (plain or materialized) view.
    fn check_view_name_free(&self, name: &str, db: &Database) -> Result<(), EngineError> {
        if db.has_relation(name) || self.views.contains(name) || self.matviews.contains(name) {
            return Err(EngineError::View(crate::views::ViewError::Duplicate(
                name.to_string(),
            )));
        }
        Ok(())
    }

    /// The `ivm.round` journal hook handed to fixpoint drivers.
    fn ivm_round_hook(&self) -> impl FnMut(&str, u64, usize) + '_ {
        move |group: &str, round: u64, fresh: usize| {
            self.journal.record(|| {
                EventData::new(EventKind::IvmRound, 0, "ivm")
                    .detail(format!("group `{group}` round {round}: {fresh} new tuples"))
            });
        }
    }

    /// Route one committed mutation's deltas through every affected
    /// materialized extent, in place, before the snapshot republish.
    /// Works on a clone of the catalog and writes back only on success,
    /// so readers always see base mutation + maintenance atomically.
    /// Incremental failures (including injected chaos faults) fall back
    /// to full recompute inside [`crate::ivm::maintain`]; an error here
    /// means even the recompute failed — the base mutation stays
    /// committed and the error surfaces to the caller.
    fn maintain_after_mutation(
        &self,
        store: &mut Store,
        deltas: Vec<MutationDelta>,
    ) -> Result<(), EngineError> {
        let units = self.matviews.units();
        if units.is_empty() {
            return Ok(());
        }
        let old = self.snapshot();
        let mut working = store.db().clone();
        let governor = self.start_governor(0);
        let mut on_round = self.ivm_round_hook();
        let outcomes =
            crate::ivm::maintain(&mut working, &old, deltas, &units, &governor, &mut on_round)?;
        if outcomes.is_empty() {
            return Ok(());
        }
        *store.db_mut() = working;
        for o in &outcomes {
            self.journal.record(|| {
                EventData::new(EventKind::IvmApply, 0, "ivm").detail(match &o.fallback {
                    Some(err) => format!(
                        "view `{}`: +{} −{} via {} (incremental failed: {err})",
                        o.view, o.added, o.removed, o.mode
                    ),
                    None if o.rounds > 0 => format!(
                        "view `{}`: +{} −{} via {} ({} rounds)",
                        o.view, o.added, o.removed, o.mode, o.rounds
                    ),
                    None => format!(
                        "view `{}`: +{} −{} via {}",
                        o.view, o.added, o.removed, o.mode
                    ),
                })
            });
        }
        Ok(())
    }

    /// Re-derive every materialized extent from scratch — used when the
    /// catalog was mutated through [`QueryEngine::db_mut`], where no
    /// deltas were captured. Errors are journaled, not propagated (this
    /// runs from a guard drop).
    fn recompute_matviews(&self, store: &mut Store) {
        let units = self.matviews.units();
        if units.is_empty() {
            return;
        }
        let mut working = store.db().clone();
        let mut on_round = self.ivm_round_hook();
        match crate::ivm::recompute_all(&mut working, &units, &mut on_round) {
            Ok(outcomes) => {
                *store.db_mut() = working;
                for o in &outcomes {
                    self.journal.record(|| {
                        EventData::new(EventKind::IvmApply, 0, "ivm").detail(format!(
                            "view `{}`: +{} −{} via {} (db_mut)",
                            o.view, o.added, o.removed, o.mode
                        ))
                    });
                }
            }
            Err(e) => {
                self.journal.record(|| {
                    EventData::new(EventKind::IvmApply, 0, "ivm")
                        .detail(format!("recompute after db_mut failed: {e}"))
                });
            }
        }
    }

    /// Lock the writer side, recovering from poisoning (the store is
    /// never left half-mutated by any path holding the lock: durable
    /// mutations apply only after their WAL record is committed, and
    /// plain mutations are single catalog calls).
    fn store_lock(&self) -> MutexGuard<'_, Store> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Republish `store`'s current catalog as the read snapshot (a COW
    /// clone — relation payloads are shared `Arc`s) and drop superseded
    /// cached base-relation indexes. Called after every committed
    /// mutation, while still holding the store lock, so snapshots are
    /// published in commit order.
    fn publish(&self, store: &Store) {
        let snap = Arc::new(store.db().clone());
        *self.snapshot.write().unwrap_or_else(|e| e.into_inner()) = snap;
        self.index_cache.clear();
    }

    /// Pin the current committed snapshot: an immutable, epoch-stamped
    /// view of the whole catalog. Every query runs against exactly one
    /// snapshot; concurrent mutations only affect queries pinned later.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(Arc::clone(
            &self.snapshot.read().unwrap_or_else(|e| e.into_inner()),
        ))
    }

    /// The current committed snapshot of the database (see
    /// [`QueryEngine::snapshot`]; dereferences to [`Database`]).
    pub fn db(&self) -> Snapshot {
        self.snapshot()
    }

    /// Exclusive mutable access to the database (inserts, new
    /// relations) through a guard that republishes the read snapshot on
    /// drop. Invalidates the base-relation index cache.
    ///
    /// On a durable engine this is a *volatile* escape hatch: changes
    /// made through it are not WAL-logged and will not survive a crash.
    /// Use the typed mutation methods ([`QueryEngine::create_relation`],
    /// [`QueryEngine::insert`], [`QueryEngine::remove`]) for durable
    /// changes.
    pub fn db_mut(&mut self) -> DbMut<'_> {
        let engine: &QueryEngine = self;
        DbMut {
            engine,
            guard: engine.store_lock(),
        }
    }

    /// Is a [`DurableDatabase`] attached?
    pub fn is_durable(&self) -> bool {
        matches!(&*self.store_lock(), Store::Durable(_))
    }

    /// Durability counters of the attached durable database, if any.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        match &*self.store_lock() {
            Store::Plain(_) => None,
            Store::Durable(d) => Some(d.stats()),
        }
    }

    /// Take an atomic checkpoint of the attached durable database: the
    /// catalog snapshots to a new generation and the WAL restarts empty.
    /// Errors when the engine is not durable.
    pub fn checkpoint(&self) -> Result<CheckpointStats, EngineError> {
        match &mut *self.store_lock() {
            Store::Plain(_) => Err(EngineError::Storage(StorageError::Io(
                "no durable database attached (open one with open_durable)".into(),
            ))),
            Store::Durable(d) => {
                let before = d.stats();
                self.journal.record(|| {
                    EventData::new(EventKind::CheckpointBegin, 0, "durable").detail(format!(
                        "{} WAL records since last checkpoint",
                        before.wal_records_since_checkpoint
                    ))
                });
                let out = d.checkpoint();
                let after = d.stats();
                self.record_durability("checkpoint", before, after);
                Ok(out?)
            }
        }
    }

    /// Create a relation through the store — WAL-logged when durable.
    /// On success the new catalog state is published for readers and the
    /// base-relation index cache is invalidated; in-flight queries keep
    /// their pinned snapshots.
    pub fn create_relation(
        &self,
        name: impl Into<String>,
        schema: Schema,
    ) -> Result<(), EngineError> {
        let mut store = self.store_lock();
        let out = match &mut *store {
            Store::Plain(db) => db.create_relation(name, schema).map_err(EngineError::from),
            Store::Durable(d) => {
                let before = d.stats();
                let out = d.create_relation(name, schema);
                let after = d.stats();
                self.record_durability("create-relation", before, after);
                out.map_err(EngineError::from)
            }
        };
        if out.is_ok() {
            self.publish(&store);
        }
        out
    }

    /// Insert a tuple through the store — WAL-logged when durable. On
    /// success the new catalog state is published for readers and the
    /// base-relation index cache is invalidated; in-flight queries keep
    /// their pinned snapshots.
    pub fn insert(&self, relation: &str, t: Tuple) -> Result<bool, EngineError> {
        let mut store = self.store_lock();
        // Capture the tuple for view maintenance only when views exist —
        // the clone is off the common path.
        let captured = if self.matviews.is_empty() {
            None
        } else {
            Some(t.clone())
        };
        let out = match &mut *store {
            Store::Plain(db) => db.insert(relation, t).map_err(EngineError::from),
            Store::Durable(d) => {
                let before = d.stats();
                let out = d.insert(relation, t);
                let after = d.stats();
                self.record_durability("insert", before, after);
                out.map_err(EngineError::from)
            }
        };
        if out.is_ok() {
            let maintenance = match captured {
                Some(t) if matches!(out, Ok(true)) => self.maintain_after_mutation(
                    &mut store,
                    vec![MutationDelta::inserted_tuple(relation, t)],
                ),
                _ => Ok(()),
            };
            self.publish(&store);
            maintenance?;
        }
        out
    }

    /// Remove a tuple through the store — WAL-logged when durable. On
    /// success the new catalog state is published for readers and the
    /// base-relation index cache is invalidated; in-flight queries keep
    /// their pinned snapshots.
    pub fn remove(&self, relation: &str, t: &Tuple) -> Result<bool, EngineError> {
        let mut store = self.store_lock();
        let out = match &mut *store {
            Store::Plain(db) => db.remove(relation, t).map_err(EngineError::from),
            Store::Durable(d) => {
                let before = d.stats();
                let out = d.remove(relation, t);
                let after = d.stats();
                self.record_durability("remove", before, after);
                out.map_err(EngineError::from)
            }
        };
        if out.is_ok() {
            let maintenance = if matches!(out, Ok(true)) && !self.matviews.is_empty() {
                self.maintain_after_mutation(
                    &mut store,
                    vec![MutationDelta::removed_tuple(relation, t.clone())],
                )
            } else {
                Ok(())
            };
            self.publish(&store);
            maintenance?;
        }
        out
    }

    /// Mirror a durable-stats delta into `durability.*` metrics and
    /// journal the WAL/checkpoint activity it proves (append, fsync,
    /// commit, checkpoint end). `op` names the mutation for the journal
    /// detail. The delta approach keeps gq-storage free of any
    /// observability dependency.
    fn record_durability(&self, op: &'static str, before: DurabilityStats, after: DurabilityStats) {
        if self.journal.is_enabled() {
            if after.wal_appends > before.wal_appends {
                self.journal.record(|| {
                    EventData::new(EventKind::WalAppend, 0, "durable").detail(format!(
                        "{op}: {} records, {} bytes",
                        after.wal_appends - before.wal_appends,
                        after.wal_bytes.saturating_sub(before.wal_bytes),
                    ))
                });
            }
            if after.fsyncs > before.fsyncs {
                self.journal.record(|| {
                    EventData::new(EventKind::WalFsync, 0, "durable")
                        .detail(format!("{op}: {} fsyncs", after.fsyncs - before.fsyncs))
                });
            }
            // A mutation whose WAL record hit the disk reached its commit
            // point; checkpoints restart the WAL and are not commits.
            if after.wal_appends > before.wal_appends && op != "checkpoint" {
                self.journal
                    .record(|| EventData::new(EventKind::WalCommit, 0, "durable").detail(op));
            }
            if after.checkpoints > before.checkpoints {
                self.journal.record(|| {
                    EventData::new(EventKind::CheckpointEnd, 0, "durable").detail(format!(
                        "{} checkpoints",
                        after.checkpoints - before.checkpoints
                    ))
                });
            }
        }
        if !self.metrics.is_enabled() {
            return;
        }
        let deltas = [
            (
                "durability.wal_appends",
                before.wal_appends,
                after.wal_appends,
            ),
            ("durability.wal_bytes", before.wal_bytes, after.wal_bytes),
            ("durability.fsyncs", before.fsyncs, after.fsyncs),
            (
                "durability.checkpoints",
                before.checkpoints,
                after.checkpoints,
            ),
            ("durability.recoveries", before.recoveries, after.recoveries),
            (
                "durability.torn_tail_truncations",
                before.torn_tail_truncations,
                after.torn_tail_truncations,
            ),
        ];
        for (name, b, a) in deltas {
            if a > b {
                self.metrics.incr(name, a - b);
            }
        }
    }

    /// (Re)materialize the `dom` view — the unary relation of every value
    /// in the database (§2.1, Domain Closure Assumption). Call again after
    /// updates; queries evaluated with
    /// [`EngineOptions::domain_closure`] use this relation as the implicit
    /// range of otherwise-unrestricted variables.
    ///
    /// On a durable engine the refreshed view is WAL-logged like any
    /// other mutation (recovery must reproduce the exact catalog), so the
    /// refresh can fail with an I/O error.
    pub fn refresh_domain_view(&self) -> Result<(), EngineError> {
        // Hold the store lock across compute + replace so a racing insert
        // cannot slip between reading the domain and publishing `dom`.
        let mut store = self.store_lock();
        let dom = store.db().domain();
        let mut named = gq_storage::Relation::new("dom", gq_storage::Schema::anonymous(1));
        for t in dom.iter() {
            // Domain tuples are unary by construction; insert cannot fail.
            let _ = named.insert(t.clone());
        }
        // Capture the refresh as a delta for view maintenance: the exact
        // symmetric difference against the previous `dom` extent.
        let delta = if self.matviews.is_empty() {
            None
        } else {
            let empty = gq_storage::Relation::new("dom", gq_storage::Schema::anonymous(1));
            let old = store.db().relation("dom").unwrap_or(&empty);
            Some(MutationDelta::replaced("dom", old, named.tuples()))
        };
        let out = match &mut *store {
            Store::Plain(db) => {
                db.replace_relation(named);
                Ok(())
            }
            Store::Durable(d) => {
                let before = d.stats();
                let out = d.replace_relation(named);
                let after = d.stats();
                self.record_durability("replace-relation", before, after);
                out.map_err(EngineError::from)
            }
        };
        if out.is_ok() {
            let maintenance = match delta {
                Some(d) => self.maintain_after_mutation(&mut store, vec![d]),
                None => Ok(()),
            };
            self.publish(&store);
            maintenance?;
        }
        out
    }

    /// Parse and evaluate a query with the default (improved) strategy.
    pub fn query(&self, text: &str) -> Result<QueryResult, EngineError> {
        self.query_with(text, Strategy::Improved)
    }

    /// Parse and evaluate a query with an explicit strategy.
    pub fn query_with(&self, text: &str, strategy: Strategy) -> Result<QueryResult, EngineError> {
        let formula = parse(text)?;
        self.eval_formula(&formula, strategy)
    }

    /// Parse and evaluate with explicit strategy and options.
    pub fn query_with_options(
        &self,
        text: &str,
        strategy: Strategy,
        options: EngineOptions,
    ) -> Result<QueryResult, EngineError> {
        let formula = parse(text)?;
        self.eval_formula_with_options(&formula, strategy, options)
    }

    /// Evaluate an already-parsed formula.
    pub fn eval_formula(
        &self,
        formula: &Formula,
        strategy: Strategy,
    ) -> Result<QueryResult, EngineError> {
        self.eval_formula_with_options(formula, strategy, EngineOptions::default())
    }

    /// Evaluate an already-parsed formula with explicit options.
    pub fn eval_formula_with_options(
        &self,
        formula: &Formula,
        strategy: Strategy,
        options: EngineOptions,
    ) -> Result<QueryResult, EngineError> {
        self.run(formula, strategy, options, None)
    }

    /// Parse, execute, and trace a query with the default strategy: the
    /// result plus a [`QueryTrace`] with phase spans, rewrite/plan-shape
    /// counters, and the annotated per-node plan tree.
    pub fn analyze(&self, text: &str) -> Result<(QueryResult, QueryTrace), EngineError> {
        self.analyze_with_options(text, Strategy::Improved, EngineOptions::default())
    }

    /// [`QueryEngine::analyze`] with explicit strategy and options.
    pub fn analyze_with_options(
        &self,
        text: &str,
        strategy: Strategy,
        options: EngineOptions,
    ) -> Result<(QueryResult, QueryTrace), EngineError> {
        let tb = TraceBuilder::new();
        let parsed = {
            let _span = tb.span("parse");
            parse(text)
        };
        let result = self.run(&parsed?, strategy, options, Some(&tb))?;
        Ok((result, tb.finish(text, strategy.name())))
    }

    /// EXPLAIN ANALYZE: execute the query (default strategy) and render
    /// the phase timings and the annotated plan tree — per node: actual
    /// rows, comparisons, probes, elapsed time and its share of the total.
    pub fn explain_analyze(&self, text: &str) -> Result<String, EngineError> {
        self.explain_analyze_with_options(text, Strategy::Improved, EngineOptions::default())
    }

    /// [`QueryEngine::explain_analyze`] with explicit strategy and options.
    pub fn explain_analyze_with_options(
        &self,
        text: &str,
        strategy: Strategy,
        options: EngineOptions,
    ) -> Result<String, EngineError> {
        let (result, trace) = self.analyze_with_options(text, strategy, options)?;
        let mut out = trace.render();
        out.push_str(&format!(
            "\n== totals ==\n  {} answers, {}\n",
            result.len(),
            result.stats
        ));
        Ok(out)
    }

    /// The evaluation pipeline behind both the plain and the analyzing
    /// entry points. With a [`TraceBuilder`] attached, every phase runs
    /// under a span, the normalize/translate phases record rule counts and
    /// plan-shape facts, and evaluation runs with a per-node profiler
    /// whose annotated tree is attached to the trace. Without one, no
    /// instrumentation code runs at all.
    fn run(
        &self,
        formula: &Formula,
        strategy: Strategy,
        options: EngineOptions,
        tb: Option<&TraceBuilder>,
    ) -> Result<QueryResult, EngineError> {
        self.run_session(
            formula,
            strategy,
            options,
            tb,
            self.limits,
            self.cancel.clone(),
            None,
        )
    }

    /// Parse and evaluate a query under *session-scoped* controls: its
    /// own [`QueryLimits`], its own [`CancelToken`] (so one connection's
    /// cancel or timeout never aborts another's query), and optionally a
    /// process-wide [`SharedBudget`] that aggregates the query's live
    /// intermediate bytes for admission control. This is the entry point
    /// `gq-server` drives; the engine-level limits and cancel token are
    /// bypassed entirely.
    pub fn query_session(
        &self,
        text: &str,
        strategy: Strategy,
        options: EngineOptions,
        limits: QueryLimits,
        cancel: CancelToken,
        shared: Option<SharedBudget>,
    ) -> Result<QueryResult, EngineError> {
        let formula = parse(text)?;
        self.run_session(&formula, strategy, options, None, limits, cancel, shared)
    }

    /// The evaluation driver behind both the engine-default and the
    /// per-session entry points: pins ONE snapshot, allocates the query
    /// id, journals start/end, runs the phases under a fresh governor.
    #[allow(clippy::too_many_arguments)]
    fn run_session(
        &self,
        formula: &Formula,
        strategy: Strategy,
        options: EngineOptions,
        tb: Option<&TraceBuilder>,
        limits: QueryLimits,
        cancel: CancelToken,
        shared: Option<SharedBudget>,
    ) -> Result<QueryResult, EngineError> {
        // Pin the snapshot FIRST: every later phase (view expansion,
        // translation, evaluation, plan-cache keying) sees this one
        // committed catalog state, whatever writers do meanwhile.
        let snap = self.snapshot();
        // The query id is always allocated (one relaxed fetch_add) so ids
        // stay monotone across journal enable/disable flips.
        let query_id = self.journal.next_query_id();
        let timer =
            (self.metrics.is_enabled() || self.journal.is_enabled() || self.slow_log.is_armed())
                .then(Instant::now);
        self.journal.record(|| {
            EventData::new(EventKind::QueryStart, query_id, "parse")
                .detail(format!("[{}] {formula}", strategy.name()))
        });
        let governor = self.start_governor_with(query_id, limits, cancel, shared);
        // When the slow log is armed and the caller is not already
        // tracing, trace on its behalf — the trace is kept only if the
        // query breaches a threshold.
        let slow_tb = (self.slow_log.is_armed() && tb.is_none()).then(TraceBuilder::new);
        let result = self.run_phases(
            &snap,
            formula,
            strategy,
            options,
            slow_tb.as_ref().or(tb),
            &governor,
            query_id,
        );
        self.finish_query(
            query_id,
            timer,
            &governor,
            slow_tb.map(|t| (t, strategy)),
            || formula.to_string(),
            &result,
        );
        self.record_query_metrics(strategy, timer, &result);
        result
    }

    /// Snapshot the limits into a per-query governor whose trip hook
    /// journals every budget trip / cancellation / contained worker panic
    /// with this query's id and the phase that tripped — satellite
    /// attribution for `EngineError::{Cancelled, ResourceExhausted,
    /// WorkerPanic}`. No hook is installed while the journal is off.
    fn start_governor(&self, query_id: u64) -> Governor {
        self.start_governor_with(query_id, self.limits, self.cancel.clone(), None)
    }

    /// [`QueryEngine::start_governor`] with explicit per-session limits,
    /// cancel token and optional shared admission budget.
    fn start_governor_with(
        &self,
        query_id: u64,
        limits: QueryLimits,
        cancel: CancelToken,
        shared: Option<SharedBudget>,
    ) -> Governor {
        let hook: Option<TripHook> = if self.journal.is_enabled() {
            let journal = Arc::clone(&self.journal);
            Some(Arc::new(move |e: &GovernorError| {
                let kind = match e {
                    GovernorError::Cancelled { .. } => EventKind::Cancelled,
                    GovernorError::ResourceExhausted { .. } => EventKind::GovernorTrip,
                    GovernorError::WorkerPanic { .. } => EventKind::WorkerPanic,
                };
                journal.record(|| EventData::new(kind, query_id, e.phase()).detail(e.to_string()));
            }))
        } else {
            None
        };
        Governor::start_shared(limits, cancel, hook, shared)
    }

    /// Journal the query's end event and retain it in the slow log when
    /// it breached an armed threshold. `query_text` is rendered lazily —
    /// never on the fast path.
    fn finish_query(
        &self,
        query_id: u64,
        timer: Option<Instant>,
        governor: &Governor,
        slow_tb: Option<(TraceBuilder, Strategy)>,
        query_text: impl FnOnce() -> String,
        result: &Result<QueryResult, EngineError>,
    ) {
        let elapsed_ns = timer.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
        if self.journal.is_enabled() {
            match result {
                Ok(r) => self.journal.record(|| {
                    EventData::new(EventKind::QueryEnd, query_id, "evaluate")
                        .detail(format!("{} answers", r.len()))
                        .dur_ns(elapsed_ns)
                }),
                Err(e) => {
                    let message = e.to_string();
                    // Chaos faults surface as their own event kind so a
                    // seed sweep shows *where* injections landed.
                    if message.contains("chaos:") {
                        self.journal.record(|| {
                            EventData::new(EventKind::Chaos, query_id, "evaluate")
                                .detail(message.clone())
                        });
                    }
                    self.journal.record(|| {
                        EventData::new(EventKind::QueryError, query_id, "evaluate")
                            .detail(message)
                            .dur_ns(elapsed_ns)
                    });
                }
            }
        }
        if let Some((tb, strategy)) = slow_tb {
            let peak_tuples = governor.intermediate_tuples();
            if let Some(reason) = self.slow_log.breach(elapsed_ns, peak_tuples) {
                self.slow_log.push(SlowLogEntry {
                    query_id,
                    trace: tb.finish(query_text(), strategy.name()),
                    peak_intermediate_tuples: peak_tuples,
                    peak_memory_bytes: governor.peak_memory_bytes(),
                    answers: result.as_ref().map(|r| r.len() as u64).unwrap_or(0),
                    reason,
                });
            }
        }
    }

    /// Engine-lifetime counters/latency for one query outcome (no-op
    /// unless metrics were enabled before the query started).
    fn record_query_metrics(
        &self,
        strategy: Strategy,
        timer: Option<Instant>,
        result: &Result<QueryResult, EngineError>,
    ) {
        if let Some(start) = timer {
            self.metrics
                .incr(&format!("query.count.{}", strategy.name()), 1);
            self.metrics.observe(
                &format!("query.latency.{}", strategy.name()),
                start.elapsed(),
            );
            if let Err(e) = &result {
                self.metrics.incr("query.errors", 1);
                match e {
                    EngineError::Cancelled { .. } => self.metrics.incr("governor.cancelled", 1),
                    EngineError::ResourceExhausted { .. } => {
                        self.metrics.incr("governor.exhausted", 1)
                    }
                    EngineError::WorkerPanic { .. } => {
                        self.metrics.incr("governor.worker_panic", 1)
                    }
                    _ => {}
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_phases(
        &self,
        snap: &Snapshot,
        formula: &Formula,
        strategy: Strategy,
        options: EngineOptions,
        tb: Option<&TraceBuilder>,
        governor: &Governor,
        query_id: u64,
    ) -> Result<QueryResult, EngineError> {
        let (_views_generation, formula) = self.preprocess(snap, formula, options, tb)?;
        // Depth guard on the fully view-expanded formula — expansion can
        // deepen a query well past what the user typed.
        governor.check_depth("parse", Resource::FormulaDepth, formula.depth() as u64)?;
        let compiled = self.compile(snap, &formula, strategy, options, governor, tb)?;
        self.execute_compiled(snap, &compiled, options, governor, tb, query_id)
    }

    /// Phase 0: view expansion and (optional) Domain Closure completion.
    /// Returns the view-registry generation the expansion ran against
    /// (observed under the registry's lock, so generation and expansion
    /// are consistent — the prepared path keys its plan-cache entries on
    /// exactly this value) alongside the expanded formula.
    fn preprocess(
        &self,
        snap: &Snapshot,
        formula: &Formula,
        options: EngineOptions,
        tb: Option<&TraceBuilder>,
    ) -> Result<(u64, Formula), EngineError> {
        let _span = span(tb, "view-expand");
        let (views_generation, expanded) = self.views.expand_with_generation(formula)?;
        if options.domain_closure {
            if !snap.has_relation("dom") {
                return Err(EngineError::Storage(
                    gq_storage::StorageError::UnknownRelation(
                        "dom (call refresh_domain_view first)".into(),
                    ),
                ));
            }
            Ok((
                views_generation,
                gq_rewrite::restrict_with_domain(&expanded, "dom"),
            ))
        } else {
            Ok((views_generation, expanded))
        }
    }

    /// Phases 1–3 — normalize, translate, optimize — producing the
    /// cacheable compiled form. `formula` must already be preprocessed.
    fn compile(
        &self,
        snap: &Snapshot,
        formula: &Formula,
        strategy: Strategy,
        options: EngineOptions,
        governor: &Governor,
        tb: Option<&TraceBuilder>,
    ) -> Result<CompiledPlan, EngineError> {
        let closed = formula.is_closed();
        let tune = |plan: gq_algebra::AlgebraExpr| {
            if options.optimize {
                gq_algebra::optimize(&plan)
            } else {
                plan
            }
        };
        let tune_bool = |plan: gq_algebra::BoolExpr| {
            if options.optimize {
                optimize_bool(&plan)
            } else {
                plan
            }
        };
        let kind = match strategy {
            Strategy::Improved => {
                let canonical = self.normalize(formula, governor, tb)?;
                let tr = ImprovedTranslator::new(snap)
                    .with_cost_ordering(options.optimize)
                    .with_governor(governor.clone());
                if closed {
                    let plan = {
                        let _span = span(tb, "translate");
                        tr.translate_closed(&canonical)?
                    };
                    let plan = {
                        let _span = span(tb, "optimize");
                        tune_bool(plan)
                    };
                    CompiledKind::Boolean { plan }
                } else {
                    let (vars, plan) = {
                        let _span = span(tb, "translate");
                        tr.translate_open(&canonical)?
                    };
                    let plan = {
                        let _span = span(tb, "optimize");
                        tune(plan)
                    };
                    CompiledKind::Algebra { vars, plan }
                }
            }
            Strategy::Classical => {
                // The classical translator runs on the *raw* query, as the
                // classical methods do.
                let tr = ClassicalTranslator::new(snap).with_governor(governor.clone());
                if closed {
                    let plan = {
                        let _span = span(tb, "translate");
                        tr.translate_closed(formula)?
                    };
                    let plan = {
                        let _span = span(tb, "optimize");
                        tune_bool(plan)
                    };
                    CompiledKind::Boolean { plan }
                } else {
                    let (vars, plan) = {
                        let _span = span(tb, "translate");
                        tr.translate_open(formula)?
                    };
                    let plan = {
                        let _span = span(tb, "optimize");
                        tune(plan)
                    };
                    CompiledKind::Algebra { vars, plan }
                }
            }
            Strategy::NestedLoop => {
                // No plan: the canonical formula (the rewrite's output,
                // the expensive part) is the reusable compilation.
                let canonical = self.normalize(formula, governor, tb)?;
                CompiledKind::Loop { canonical }
            }
        };
        // The CSE analysis is part of compilation: the shared-subplan set
        // is a pure function of the plan, so cache hits reuse it too.
        let cse_shared = if options.cse {
            match &kind {
                CompiledKind::Algebra { plan, .. } => gq_algebra::shared_subplans(&[plan]),
                CompiledKind::Boolean { plan } => {
                    gq_algebra::shared_subplans(&plan.algebra_exprs())
                }
                CompiledKind::Loop { .. } => Default::default(),
            }
        } else {
            Default::default()
        };
        Ok(CompiledPlan { kind, cse_shared })
    }

    /// Phase 4: evaluate a compiled plan. Shared by the ad-hoc path (fresh
    /// compile every time) and the prepared path (plan possibly from the
    /// cache) — so cached and fresh executions are bit-identical.
    fn execute_compiled(
        &self,
        snap: &Snapshot,
        compiled: &CompiledPlan,
        options: EngineOptions,
        governor: &Governor,
        tb: Option<&TraceBuilder>,
        query_id: u64,
    ) -> Result<QueryResult, EngineError> {
        let make_eval = || {
            let ev = if options.share_subplans {
                Evaluator::with_sharing(snap)
            } else {
                Evaluator::new(snap)
            };
            let ev = ev
                .with_exec_config(self.exec.with_streaming(options.streaming))
                .with_governor(governor.clone());
            let ev = if options.use_base_indexes {
                ev.with_index_cache(&self.index_cache)
            } else {
                ev
            };
            let ev = if options.cse {
                ev.with_cse(compiled.cse_shared.clone())
            } else {
                ev
            };
            // Flight-record pipeline boundaries only while the journal is
            // on; with no hook the evaluator's event path is a no-op.
            if self.journal.is_enabled() {
                let journal = Arc::clone(&self.journal);
                let hook: PipelineHook = Rc::new(move |e: &PipelineEvent| match *e {
                    PipelineEvent::Start { id } => journal.record(|| {
                        EventData::new(EventKind::PipelineStart, query_id, "evaluate")
                            .detail(format!("pipeline {id}"))
                    }),
                    PipelineEvent::Break { id, kind, tuples } => journal.record(|| {
                        EventData::new(EventKind::PipelineBreak, query_id, "evaluate")
                            .detail(format!("pipeline {id} {kind} tuples={tuples}"))
                    }),
                });
                ev.with_pipeline_hook(hook)
            } else {
                ev
            }
        };
        match &compiled.kind {
            CompiledKind::Boolean { plan } => {
                check_bool_plan_depth(governor, plan)?;
                if let Some(t) = tb {
                    PlanShape::of_roots(plan.algebra_exprs()).record_into(t);
                }
                let profiler = tb.map(|_| Rc::new(PlanProfiler::new_bool(plan)));
                let mut ev = make_eval();
                if let Some(p) = &profiler {
                    ev = ev.with_profiler(Rc::clone(p));
                }
                let truth = {
                    let _span = span(tb, "evaluate");
                    plan.eval(&ev)?
                };
                if let (Some(t), Some(p)) = (tb, profiler) {
                    t.set_plan(p.trace_bool(plan));
                }
                attach_pipelines(tb, &ev);
                Ok(QueryResult {
                    vars: vec![],
                    answers: nullary(truth),
                    stats: ev.stats(),
                })
            }
            CompiledKind::Algebra { vars, plan } => {
                governor.check_depth("translate", Resource::PlanDepth, plan.depth() as u64)?;
                if let Some(t) = tb {
                    PlanShape::of(plan).record_into(t);
                }
                let profiler = tb.map(|_| Rc::new(PlanProfiler::new(plan)));
                let mut ev = make_eval();
                if let Some(p) = &profiler {
                    ev = ev.with_profiler(Rc::clone(p));
                }
                let answers = {
                    let _span = span(tb, "evaluate");
                    ev.eval(plan)?
                };
                if let (Some(t), Some(p)) = (tb, profiler) {
                    t.set_plan(p.trace(plan));
                }
                attach_pipelines(tb, &ev);
                Ok(QueryResult {
                    vars: vars.clone(),
                    answers,
                    stats: ev.stats(),
                })
            }
            CompiledKind::Loop { canonical } => {
                let profiler = tb.map(|_| Rc::new(LoopProfiler::new()));
                let mut ev = PipelineEvaluator::new(snap).with_governor(governor.clone());
                if let Some(p) = &profiler {
                    ev = ev.with_profiler(Rc::clone(p));
                }
                let result = if canonical.is_closed() {
                    let truth = {
                        let _span = span(tb, "evaluate");
                        ev.eval_closed(canonical)?
                    };
                    QueryResult {
                        vars: vec![],
                        answers: nullary(truth),
                        stats: ev.stats(),
                    }
                } else {
                    let (vars, answers) = {
                        let _span = span(tb, "evaluate");
                        ev.eval_open(canonical)?
                    };
                    QueryResult {
                        vars,
                        answers,
                        stats: ev.stats(),
                    }
                };
                if let (Some(t), Some(p)) = (tb, profiler) {
                    t.set_plan(p.trace());
                }
                Ok(result)
            }
        }
    }

    /// Prepare a query with the default (improved) strategy and options.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, EngineError> {
        self.prepare_with(text, Strategy::Improved, EngineOptions::default())
    }

    /// Parse a query and warm the plan cache for it: the query compiles
    /// now (normalize + translate + optimize), so every subsequent
    /// [`QueryEngine::execute`] — until a catalog mutation — skips
    /// straight to evaluation.
    pub fn prepare_with(
        &self,
        text: &str,
        strategy: Strategy,
        options: EngineOptions,
    ) -> Result<PreparedQuery, EngineError> {
        let formula = parse(text)?;
        let prepared = PreparedQuery {
            text: text.to_string(),
            formula,
            strategy,
            options,
        };
        let snap = self.snapshot();
        let (views_generation, expanded) =
            self.preprocess(&snap, &prepared.formula, options, None)?;
        // Preparation is not a query: journal events it produces
        // (plan-cache miss, governor trips) carry query id 0.
        let governor = self.start_governor(0);
        governor.check_depth("parse", Resource::FormulaDepth, expanded.depth() as u64)?;
        self.lookup_or_compile(
            &snap,
            &expanded,
            views_generation,
            strategy,
            options,
            &governor,
            None,
            0,
        )?;
        Ok(prepared)
    }

    /// Execute a prepared query through the plan cache. A hit skips the
    /// normalize/translate/optimize phases entirely; a miss (first
    /// execution, or the catalog changed since) compiles and caches.
    /// Results are bit-identical to [`QueryEngine::query_with_options`].
    pub fn execute(&self, prepared: &PreparedQuery) -> Result<QueryResult, EngineError> {
        let timer = self.metrics.is_enabled().then(Instant::now);
        let result = self.execute_prepared(prepared, None);
        self.record_query_metrics(prepared.strategy, timer, &result);
        result
    }

    /// [`QueryEngine::execute`] with a full [`QueryTrace`]: on a cache hit
    /// the trace shows *no* normalize/translate/optimize spans — the
    /// observable proof that the cache skipped those phases.
    pub fn analyze_prepared(
        &self,
        prepared: &PreparedQuery,
    ) -> Result<(QueryResult, QueryTrace), EngineError> {
        let tb = TraceBuilder::new();
        let result = self.execute_prepared(prepared, Some(&tb))?;
        Ok((result, tb.finish(&prepared.text, prepared.strategy.name())))
    }

    fn execute_prepared(
        &self,
        prepared: &PreparedQuery,
        tb: Option<&TraceBuilder>,
    ) -> Result<QueryResult, EngineError> {
        // One snapshot for the whole execution: the cache lookup's epoch,
        // a possible recompile, and evaluation all see the same catalog.
        let snap = self.snapshot();
        let query_id = self.journal.next_query_id();
        let timer = (self.journal.is_enabled() || self.slow_log.is_armed()).then(Instant::now);
        self.journal.record(|| {
            EventData::new(EventKind::QueryStart, query_id, "parse").detail(format!(
                "[{}] {}",
                prepared.strategy.name(),
                prepared.text
            ))
        });
        let governor = self.start_governor(query_id);
        let slow_tb = (self.slow_log.is_armed() && tb.is_none()).then(TraceBuilder::new);
        let trace = slow_tb.as_ref().or(tb);
        let result = (|| {
            let (views_generation, expanded) =
                self.preprocess(&snap, &prepared.formula, prepared.options, trace)?;
            governor.check_depth("parse", Resource::FormulaDepth, expanded.depth() as u64)?;
            let compiled = self.lookup_or_compile(
                &snap,
                &expanded,
                views_generation,
                prepared.strategy,
                prepared.options,
                &governor,
                trace,
                query_id,
            )?;
            self.execute_compiled(
                &snap,
                &compiled,
                prepared.options,
                &governor,
                trace,
                query_id,
            )
        })();
        self.finish_query(
            query_id,
            timer,
            &governor,
            slow_tb.map(|t| (t, prepared.strategy)),
            || prepared.text.clone(),
            &result,
        );
        result
    }

    /// The plan-cache gate: answer from the cache when every compilation
    /// input matches (α-canonical formula, strategy, options, the version
    /// stamps of the relations the formula reads, view generation),
    /// compile-and-insert otherwise. The insert happens after a
    /// *successful* compile and before evaluation, so an evaluation error
    /// never poisons the cached plan — and a failed compile caches
    /// nothing.
    ///
    /// Keying on per-relation versions instead of the global catalog
    /// epoch means a mutation only invalidates the plans that read the
    /// mutated relation; plans over untouched relations keep hitting.
    /// `views_generation` must be the generation returned by
    /// [`QueryEngine::preprocess`] — observed under the registry lock
    /// *during* expansion, never re-read here, so a racing view
    /// definition can't let a plan compiled against new views be cached
    /// under the old generation.
    #[allow(clippy::too_many_arguments)]
    fn lookup_or_compile(
        &self,
        snap: &Snapshot,
        expanded: &Formula,
        views_generation: u64,
        strategy: Strategy,
        options: EngineOptions,
        governor: &Governor,
        tb: Option<&TraceBuilder>,
        query_id: u64,
    ) -> Result<Arc<CompiledPlan>, EngineError> {
        // Sorted, deduplicated (relation, version) stamps for every
        // relation the expanded formula scans — including `dom` when
        // domain closure spliced it in, and materialized-view extents
        // (their versions bump when maintenance patches them).
        let reads: Vec<(String, u64)> = expanded
            .relation_names()
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .map(|n| (n.to_string(), snap.relation_version(n)))
            .collect();
        let key = PlanKey {
            canonical: alpha_canonical(expanded),
            strategy,
            options,
            reads,
            views_generation,
        };
        if let Some(hit) = self.plan_cache.get(&key) {
            self.metrics.incr("plan_cache.hit", 1);
            self.journal.record(|| {
                EventData::new(EventKind::PlanCacheHit, query_id, "plan-cache")
                    .detail(key.canonical.clone())
            });
            return Ok(hit);
        }
        self.metrics.incr("plan_cache.miss", 1);
        self.journal.record(|| {
            EventData::new(EventKind::PlanCacheMiss, query_id, "plan-cache")
                .detail(key.canonical.clone())
        });
        let compiled = Arc::new(self.compile(snap, expanded, strategy, options, governor, tb)?);
        // Account the cached plan's footprint against this query's
        // budgets — a memory-limited workload cannot hide allocations in
        // the plan cache.
        governor.charge_intermediate("plan-cache", 0, compiled.approx_bytes())?;
        let evicted = self.plan_cache.insert(key, Arc::clone(&compiled));
        if evicted > 0 {
            self.metrics.incr("plan_cache.evict", evicted);
            self.journal.record(|| {
                EventData::new(EventKind::PlanCacheEvict, query_id, "plan-cache")
                    .detail(format!("{evicted} evicted"))
            });
        }
        Ok(compiled)
    }

    /// Plan-cache statistics (entries, bytes, hit/miss/eviction counts).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Drop every cached plan (REPL `.cache clear`).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear()
    }

    /// Canonicalize under a `normalize` span; when tracing, record the
    /// per-rule application counts and the total step count as counters.
    /// The governor is polled at every rewrite-rule application and a
    /// `max_rewrite_steps` limit replaces the internal safety budget.
    fn normalize(
        &self,
        formula: &Formula,
        governor: &Governor,
        tb: Option<&TraceBuilder>,
    ) -> Result<Formula, EngineError> {
        let _span = span(tb, "normalize");
        match tb {
            None => Ok(canonicalize_governed(formula, governor)?),
            Some(t) => {
                let (canonical, trace) = canonicalize_traced_governed(formula, governor)?;
                t.incr("rewrite.steps", trace.steps.len() as u64);
                for (rule, n) in trace.rule_counts() {
                    t.incr(&format!("rewrite.rule.{rule}"), n as u64);
                }
                Ok(canonical)
            }
        }
    }
}

/// Open a span when tracing (no-op otherwise).
fn span<'a>(tb: Option<&'a TraceBuilder>, name: &str) -> Option<SpanGuard<'a>> {
    tb.map(|t| t.span(name))
}

/// Attach the evaluator's pipeline-breaker record to an active trace, so
/// `:analyze` can show where a streaming plan broke and what the live
/// intermediate watermark was at each boundary.
fn attach_pipelines(tb: Option<&TraceBuilder>, ev: &Evaluator<'_>) {
    let Some(t) = tb else { return };
    let spans: Vec<PipelineSpan> = ev
        .pipeline_breaks()
        .into_iter()
        .map(|b| PipelineSpan {
            id: b.id,
            breaker: b.kind.to_string(),
            tuples: b.tuples,
            live_tuples: b.live_tuples,
            live_bytes: b.live_bytes,
        })
        .collect();
    if !spans.is_empty() {
        t.set_pipelines(spans);
    }
}

/// Optimize every algebra expression inside a boolean plan.
fn optimize_bool(plan: &gq_algebra::BoolExpr) -> gq_algebra::BoolExpr {
    use gq_algebra::BoolExpr;
    match plan {
        BoolExpr::NonEmpty(e) => BoolExpr::NonEmpty(gq_algebra::optimize(e)),
        BoolExpr::Empty(e) => BoolExpr::Empty(gq_algebra::optimize(e)),
        BoolExpr::And(a, b) => BoolExpr::and(optimize_bool(a), optimize_bool(b)),
        BoolExpr::Or(a, b) => BoolExpr::or(optimize_bool(a), optimize_bool(b)),
        BoolExpr::Not(a) => BoolExpr::not(optimize_bool(a)),
        BoolExpr::Const(b) => BoolExpr::Const(*b),
    }
}

/// Plan-depth guard over every algebra expression of a boolean plan.
fn check_bool_plan_depth(g: &Governor, plan: &gq_algebra::BoolExpr) -> Result<(), EngineError> {
    let depth = plan
        .algebra_exprs()
        .iter()
        .map(|e| e.depth())
        .max()
        .unwrap_or(0);
    g.check_depth("translate", Resource::PlanDepth, depth as u64)?;
    Ok(())
}

fn nullary(truth: bool) -> Relation {
    let mut r = Relation::intermediate(0);
    if truth {
        // Inserting the empty tuple into a 0-ary relation cannot fail.
        let _ = r.insert(Tuple::new(vec![]));
    }
    r
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use gq_storage::{tuple, Schema};

    fn engine() -> QueryEngine {
        let mut db = Database::new();
        db.create_relation("p", Schema::new(vec!["a"]).unwrap())
            .unwrap();
        db.create_relation("r", Schema::new(vec!["a", "b"]).unwrap())
            .unwrap();
        for v in [1, 2, 3] {
            db.insert("p", tuple![v]).unwrap();
        }
        db.insert("r", tuple![1, 10]).unwrap();
        db.insert("r", tuple![2, 20]).unwrap();
        QueryEngine::new(db)
    }

    #[test]
    fn open_query_all_strategies() {
        let e = engine();
        for s in Strategy::ALL {
            let r = e.query_with("p(x) & (exists y. r(x,y))", s).unwrap();
            assert_eq!(r.len(), 2, "strategy {}", s.name());
            assert_eq!(r.vars.len(), 1);
        }
    }

    #[test]
    fn closed_query_all_strategies() {
        let e = engine();
        for s in Strategy::ALL {
            let yes = e
                .query_with("exists x. p(x) & !(exists y. r(x,y))", s)
                .unwrap();
            assert!(yes.is_true(), "strategy {}", s.name()); // 3 has no r
            let no = e.query_with("exists x. p(x) & r(x,99)", s).unwrap();
            assert!(!no.is_true(), "strategy {}", s.name());
        }
    }

    #[test]
    fn stats_populated() {
        let e = engine();
        let r = e.query("p(x)").unwrap();
        assert!(r.stats.base_tuples_read >= 3);
        assert_eq!(r.stats.base_scans, 1);
    }

    #[test]
    fn parse_errors_surface() {
        let e = engine();
        assert!(matches!(e.query("p(x"), Err(EngineError::Parse(_))));
    }

    #[test]
    fn unrestricted_query_rejected() {
        let e = engine();
        assert!(matches!(e.query("!p(x)"), Err(EngineError::Translate(_))));
    }

    #[test]
    fn db_mutation_through_engine() {
        let mut e = engine();
        e.db_mut().insert("p", tuple![4]).unwrap();
        assert_eq!(e.query("p(x)").unwrap().len(), 4);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<QueryEngine>();
        assert_send_sync::<Snapshot>();
    }

    #[test]
    fn pinned_snapshot_survives_later_mutations() {
        let e = engine();
        let snap = e.snapshot();
        let epoch = snap.epoch();
        e.insert("p", tuple![77]).unwrap();
        // The pinned snapshot still shows the pre-mutation state…
        assert_eq!(snap.epoch(), epoch);
        assert!(!snap.relation("p").unwrap().contains(&tuple![77]));
        // …while a fresh snapshot (and queries) see the new state.
        let fresh = e.snapshot();
        assert!(fresh.epoch() > epoch);
        assert!(fresh.relation("p").unwrap().contains(&tuple![77]));
        assert_eq!(e.query("p(x)").unwrap().len(), 4);
    }

    #[test]
    fn failed_mutation_publishes_nothing() {
        let e = engine();
        let epoch = e.snapshot().epoch();
        assert!(e.insert("ghost", tuple![1]).is_err());
        assert_eq!(e.snapshot().epoch(), epoch, "failed insert republished");
    }

    #[test]
    fn typed_mutations_work_through_shared_references() {
        let e = engine();
        // &self mutations: usable through Arc<QueryEngine> (the server's
        // sharing mode) without any external lock.
        let shared = std::sync::Arc::new(e);
        shared
            .create_relation("s", Schema::new(vec!["a"]).unwrap())
            .unwrap();
        shared.insert("s", tuple![1]).unwrap();
        shared.remove("s", &tuple![1]).unwrap();
        shared
            .define_view("v", "p(x) & (exists y. r(x,y))")
            .unwrap();
        assert_eq!(shared.query("v(x)").unwrap().len(), 2);
    }

    #[test]
    fn concurrent_readers_see_committed_epochs_only() {
        use std::sync::Arc;
        let e = Arc::new(engine());
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let e = Arc::clone(&e);
                    s.spawn(move || {
                        for _ in 0..50 {
                            // p starts with 3 tuples; each committed insert
                            // adds one. Any in-between count would mean a
                            // torn read.
                            let n = e.query("p(x)").unwrap().len();
                            assert!((3..=13).contains(&n), "torn count {n}");
                        }
                    })
                })
                .collect();
            for v in 100..110 {
                e.insert("p", tuple![v]).unwrap();
            }
            for r in readers {
                r.join().unwrap();
            }
        });
        assert_eq!(e.query("p(x)").unwrap().len(), 13);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod option_tests {
    use super::*;
    use gq_storage::{tuple, Schema};

    fn engine() -> QueryEngine {
        let mut db = Database::new();
        db.create_relation("p", Schema::new(vec!["a"]).unwrap())
            .unwrap();
        db.create_relation("q", Schema::new(vec!["a"]).unwrap())
            .unwrap();
        db.create_relation("r", Schema::new(vec!["a", "b"]).unwrap())
            .unwrap();
        for v in 0..10 {
            db.insert("p", tuple![v]).unwrap();
            if v % 2 == 0 {
                db.insert("q", tuple![v]).unwrap();
            }
            db.insert("r", tuple![v, (v * 3) % 10]).unwrap();
        }
        QueryEngine::new(db)
    }

    const QUERIES: &[&str] = &[
        "p(x) & !q(x)",
        "p(x) & (forall y. q(y) -> r(x,y))",
        "p(x) & (q(x) | (exists y. r(x,y) & q(y)))",
        "exists x. p(x) & !(exists y. r(x,y) & !q(y))",
    ];

    #[test]
    fn options_preserve_answers() {
        let e = engine();
        for text in QUERIES {
            let baseline = e.query(text).unwrap();
            for optimize in [false, true] {
                for share_subplans in [false, true] {
                    let options = EngineOptions {
                        optimize,
                        share_subplans,
                        ..EngineOptions::default()
                    };
                    for strategy in [Strategy::Improved, Strategy::Classical] {
                        let r = e.query_with_options(text, strategy, options).unwrap();
                        assert!(
                            baseline.answers.set_eq(&r.answers),
                            "`{text}` with {options:?} under {}",
                            strategy.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn optimizer_reduces_classical_reads() {
        let e = engine();
        let text = "p(x) & (exists y. r(x,y) & q(y))";
        let raw = e
            .query_with_options(text, Strategy::Classical, EngineOptions::default())
            .unwrap();
        let opt = e
            .query_with_options(
                text,
                Strategy::Classical,
                EngineOptions {
                    optimize: true,
                    ..EngineOptions::default()
                },
            )
            .unwrap();
        assert!(raw.answers.set_eq(&opt.answers));
        assert!(
            opt.stats.max_intermediate <= raw.stats.max_intermediate,
            "optimizer should not grow intermediates: {} vs {}",
            opt.stats.max_intermediate,
            raw.stats.max_intermediate
        );
    }

    #[test]
    fn base_indexes_preserve_answers_and_save_reads() {
        let e = engine();
        let text = "p(x) & !(exists y. r(x,y) & q(y))";
        let plain = e.query(text).unwrap();
        let opts = EngineOptions {
            use_base_indexes: true,
            ..EngineOptions::default()
        };
        // warm the cache, then measure
        e.query_with_options(text, Strategy::Improved, opts)
            .unwrap();
        let cached = e
            .query_with_options(text, Strategy::Improved, opts)
            .unwrap();
        assert!(plain.answers.set_eq(&cached.answers));
        assert!(
            cached.stats.base_tuples_read < plain.stats.base_tuples_read,
            "warm run should read less: {} vs {}",
            cached.stats.base_tuples_read,
            plain.stats.base_tuples_read
        );
    }

    #[test]
    fn db_mut_invalidates_index_cache() {
        use gq_storage::tuple;
        let mut e = engine();
        let opts = EngineOptions {
            use_base_indexes: true,
            ..EngineOptions::default()
        };
        let before = e
            .query_with_options("p(x) & q(x)", Strategy::Improved, opts)
            .unwrap();
        e.db_mut().insert("q", tuple![1]).unwrap(); // 1 was odd → not in q
        let after = e
            .query_with_options("p(x) & q(x)", Strategy::Improved, opts)
            .unwrap();
        assert_eq!(after.len(), before.len() + 1, "stale index not invalidated");
    }

    #[test]
    fn domain_closure_enables_negation_only_queries() {
        let e = engine();
        e.refresh_domain_view().unwrap();
        let options = EngineOptions {
            domain_closure: true,
            ..EngineOptions::default()
        };
        // ¬q(x) alone is unrestricted; under domain closure it ranges over
        // every database value (§2.1).
        let r = e
            .query_with_options("!q(x)", Strategy::Improved, options)
            .unwrap();
        // domain = {0..9}; q holds of evens → odds are the answers
        assert_eq!(r.len(), 5);
        // ∀x p(x) (no range) also works under closure: p holds of every
        // value 0..9, which is exactly the database domain here → true.
        let all_p = e
            .query_with_options("forall x. p(x)", Strategy::Improved, options)
            .unwrap();
        assert!(all_p.is_true());
        // A universal that genuinely fails: q only holds of the evens.
        let all_q = e
            .query_with_options("forall x. q(x)", Strategy::Improved, options)
            .unwrap();
        assert!(!all_q.is_true());
    }

    #[test]
    fn domain_closure_requires_view() {
        let e = engine();
        let options = EngineOptions {
            domain_closure: true,
            ..EngineOptions::default()
        };
        assert!(e
            .query_with_options("!q(x)", Strategy::Improved, options)
            .is_err());
    }

    #[test]
    fn sharing_hits_on_division_plan() {
        let e = engine();
        let text = "p(x) & (forall y. q(y) -> r(x,y))";
        let r = e
            .query_with_options(
                text,
                Strategy::Improved,
                EngineOptions {
                    share_subplans: true,
                    ..EngineOptions::default()
                },
            )
            .unwrap();
        // The division plan materializes π(q) twice (divisor + vacuous
        // guard); with sharing the second is a cache hit.
        assert!(r.stats.memo_hits >= 1, "stats: {}", r.stats);
    }

    #[test]
    fn cse_option_preserves_answers() {
        let e = engine();
        let options = EngineOptions {
            cse: true,
            ..EngineOptions::default()
        };
        for text in QUERIES {
            let baseline = e.query(text).unwrap();
            for strategy in [Strategy::Improved, Strategy::Classical] {
                let r = e.query_with_options(text, strategy, options).unwrap();
                assert!(
                    baseline.answers.set_eq(&r.answers),
                    "`{text}` with CSE under {}",
                    strategy.name()
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod prepared_tests {
    use super::*;
    use gq_storage::{tuple, Schema};

    fn engine() -> QueryEngine {
        let mut db = Database::new();
        db.create_relation("p", Schema::new(vec!["a"]).unwrap())
            .unwrap();
        db.create_relation("q", Schema::new(vec!["a"]).unwrap())
            .unwrap();
        db.create_relation("r", Schema::new(vec!["a", "b"]).unwrap())
            .unwrap();
        for v in 0..8 {
            db.insert("p", tuple![v]).unwrap();
            if v % 2 == 0 {
                db.insert("q", tuple![v]).unwrap();
            }
            db.insert("r", tuple![v, (v * 3) % 8]).unwrap();
        }
        QueryEngine::new(db)
    }

    #[test]
    fn prepared_matches_adhoc_and_hits_cache() {
        let e = engine();
        let text = "p(x) & (forall y. q(y) -> r(x,y))";
        let adhoc = e.query(text).unwrap();
        let prepared = e.prepare(text).unwrap();
        // prepare() compiled once: one miss, no hits yet.
        let s = e.plan_cache_stats();
        assert_eq!((s.misses, s.hits, s.entries), (1, 0, 1));
        for _ in 0..3 {
            let r = e.execute(&prepared).unwrap();
            assert!(adhoc.answers.set_eq(&r.answers));
            assert_eq!(adhoc.vars, r.vars);
        }
        let s = e.plan_cache_stats();
        assert_eq!((s.misses, s.hits), (1, 3), "every execute was a hit");
    }

    #[test]
    fn unrelated_mutation_keeps_cached_plans_hot() {
        let e = engine();
        // The plan reads p and q only — r is not in its read set.
        let prepared = e.prepare("p(x) & !q(x)").unwrap();
        e.execute(&prepared).unwrap();
        let s = e.plan_cache_stats();
        assert_eq!((s.misses, s.hits), (1, 1));
        // Mutating r must NOT invalidate the plan (the old global-epoch
        // key evicted on any mutation anywhere — this pins the fix).
        e.insert("r", tuple![100, 200]).unwrap();
        e.execute(&prepared).unwrap();
        let s = e.plan_cache_stats();
        assert_eq!(
            (s.misses, s.hits),
            (1, 2),
            "an insert into an unread relation evicted the plan"
        );
        // Mutating a relation the plan DOES read recompiles exactly once.
        e.insert("q", tuple![7]).unwrap();
        e.execute(&prepared).unwrap();
        let s = e.plan_cache_stats();
        assert_eq!((s.misses, s.hits), (2, 2));
    }

    #[test]
    fn cache_hit_skips_compilation_phases() {
        let e = engine();
        let prepared = e.prepare("p(x) & !q(x)").unwrap();
        let (_, trace) = e.analyze_prepared(&prepared).unwrap();
        let names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
        // The hit goes straight to evaluation: no normalize / translate /
        // optimize spans appear in the trace.
        assert!(names.contains(&"evaluate"), "spans: {names:?}");
        for phase in ["normalize", "translate", "optimize"] {
            assert!(!names.contains(&phase), "{phase} ran on a hit: {names:?}");
        }
    }

    #[test]
    fn adhoc_queries_bypass_the_cache() {
        let e = engine();
        e.query("p(x) & !q(x)").unwrap();
        e.query("p(x) & !q(x)").unwrap();
        let s = e.plan_cache_stats();
        assert_eq!((s.entries, s.hits, s.misses), (0, 0, 0));
    }

    #[test]
    fn catalog_mutation_invalidates_cached_plans() {
        let mut e = engine();
        let prepared = e.prepare("p(x) & q(x)").unwrap();
        let before = e.execute(&prepared).unwrap();
        e.db_mut().insert("q", tuple![1]).unwrap(); // 1 was odd → not in q
        let after = e.execute(&prepared).unwrap();
        assert_eq!(after.len(), before.len() + 1, "stale plan served");
        let s = e.plan_cache_stats();
        // prepare + post-mutation execute each missed; the in-between
        // execute hit.
        assert_eq!((s.misses, s.hits), (2, 1), "stats: {s:?}");
    }

    #[test]
    fn view_redefinition_invalidates_cached_plans() {
        let e = engine();
        e.define_view("evens", "q(v)").unwrap();
        let prepared = e.prepare("p(x) & evens(x)").unwrap();
        assert_eq!(e.execute(&prepared).unwrap().len(), 4);
        // A *new* view definition bumps the registry generation; cached
        // plans for unrelated queries must not survive either.
        e.define_view("odds", "p(v) & !q(v)").unwrap();
        assert_eq!(e.execute(&prepared).unwrap().len(), 4);
        let s = e.plan_cache_stats();
        assert_eq!((s.misses, s.hits), (2, 1), "stats: {s:?}");
    }

    #[test]
    fn alpha_equivalent_queries_share_one_entry() {
        let e = engine();
        let a = e.prepare("p(x) & (exists y. r(x,y) & q(y))").unwrap();
        let b = e.prepare("p(x) & (exists z. r(x,z) & q(z))").unwrap();
        let s = e.plan_cache_stats();
        assert_eq!((s.entries, s.misses, s.hits), (1, 1, 1), "stats: {s:?}");
        assert!(e
            .execute(&a)
            .unwrap()
            .answers
            .set_eq(&e.execute(&b).unwrap().answers));
    }

    #[test]
    fn strategies_and_options_partition_the_cache() {
        let e = engine();
        let text = "p(x) & !q(x)";
        e.prepare_with(text, Strategy::Improved, EngineOptions::default())
            .unwrap();
        e.prepare_with(text, Strategy::Classical, EngineOptions::default())
            .unwrap();
        e.prepare_with(
            text,
            Strategy::Improved,
            EngineOptions {
                optimize: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(e.plan_cache_stats().entries, 3);
    }

    #[test]
    fn prepared_all_strategies_match_adhoc() {
        let e = engine();
        let text = "exists x. p(x) & !(exists y. r(x,y) & !q(y))";
        for s in Strategy::ALL {
            let adhoc = e.query_with(text, s).unwrap();
            let prepared = e.prepare_with(text, s, EngineOptions::default()).unwrap();
            // twice: once compiling (prepare warmed it), once from cache
            for _ in 0..2 {
                let r = e.execute(&prepared).unwrap();
                assert_eq!(r.is_true(), adhoc.is_true(), "strategy {}", s.name());
            }
        }
    }

    #[test]
    fn capacity_bound_is_respected() {
        let e = engine().with_plan_cache_capacity(2);
        for text in ["p(x)", "q(x)", "p(x) & q(x)"] {
            e.prepare(text).unwrap();
        }
        let s = e.plan_cache_stats();
        assert_eq!((s.entries, s.capacity, s.evictions), (2, 2, 1));
    }

    #[test]
    fn prepared_with_cse_matches_and_still_hits() {
        let e = engine();
        let options = EngineOptions {
            cse: true,
            optimize: true,
            ..EngineOptions::default()
        };
        let text = "p(x) & (forall y. q(y) -> r(x,y))";
        let adhoc = e.query(text).unwrap();
        let prepared = e.prepare_with(text, Strategy::Improved, options).unwrap();
        let r1 = e.execute(&prepared).unwrap();
        let r2 = e.execute(&prepared).unwrap();
        assert!(adhoc.answers.set_eq(&r1.answers));
        assert_eq!(r1.answers.sorted_tuples(), r2.answers.sorted_tuples());
        assert_eq!(e.plan_cache_stats().hits, 2);
    }

    #[test]
    fn failed_prepare_caches_nothing() {
        let e = engine();
        assert!(e.prepare("!p(x)").is_err()); // unrestricted
        assert!(e.prepare("p(x").is_err()); // parse error
        let s = e.plan_cache_stats();
        assert_eq!(s.entries, 0, "failed compiles must not be cached");
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod durable_tests {
    use super::*;
    use gq_storage::{tuple, Schema};

    fn fresh_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gq_engine_durable_{name}"));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn durable_engine_round_trips_through_reopen() {
        let dir = fresh_dir("round_trip");
        {
            let (e, rec) = QueryEngine::open_durable(&dir).unwrap();
            assert!(rec.created_fresh);
            assert!(e.is_durable());
            e.create_relation("p", Schema::new(vec!["a"]).unwrap())
                .unwrap();
            for v in [1, 2, 3] {
                e.insert("p", tuple![v]).unwrap();
            }
            e.remove("p", &tuple![2]).unwrap();
            assert_eq!(e.query("p(x)").unwrap().len(), 2);
        }
        let (e, rec) = QueryEngine::open_durable(&dir).unwrap();
        assert!(!rec.created_fresh);
        assert_eq!(rec.wal_records_replayed, 5);
        assert_eq!(e.query("p(x)").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plain_engine_has_no_durability() {
        let e = QueryEngine::new(Database::new());
        assert!(!e.is_durable());
        assert!(e.durability_stats().is_none());
        assert!(e.checkpoint().is_err());
    }

    #[test]
    fn durable_mutations_mirror_into_metrics() {
        let dir = fresh_dir("metrics");
        let (e, _) = QueryEngine::open_durable(&dir).unwrap();
        e.metrics().enable();
        e.create_relation("p", Schema::anonymous(1)).unwrap();
        e.insert("p", tuple![1]).unwrap();
        e.checkpoint().unwrap();
        let snap = e.metrics().snapshot();
        assert_eq!(snap.counters.get("durability.wal_appends"), Some(&2));
        assert_eq!(snap.counters.get("durability.checkpoints"), Some(&1));
        assert!(snap.counters.get("durability.fsyncs").copied().unwrap_or(0) >= 3);
        assert!(
            snap.counters
                .get("durability.wal_bytes")
                .copied()
                .unwrap_or(0)
                > 0
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovered_epoch_invalidates_prepared_plans() {
        // A plan prepared before a crash must not be served against the
        // recovered catalog if the catalog changed: the recovered epoch
        // resumes past the WAL high-water mark, so the (epoch-keyed)
        // cache key can never collide with a pre-crash entry.
        let dir = fresh_dir("epoch_cache");
        let epoch_before;
        {
            let (e, _) = QueryEngine::open_durable(&dir).unwrap();
            e.create_relation("p", Schema::anonymous(1)).unwrap();
            e.insert("p", tuple![1]).unwrap();
            epoch_before = e.db().epoch();
        }
        let (e, rec) = QueryEngine::open_durable(&dir).unwrap();
        assert_eq!(rec.recovered_epoch, epoch_before);
        let prepared = e.prepare("p(x)").unwrap();
        assert_eq!(e.execute(&prepared).unwrap().len(), 1);
        e.insert("p", tuple![2]).unwrap();
        assert!(e.db().epoch() > epoch_before);
        assert_eq!(e.execute(&prepared).unwrap().len(), 2, "stale plan served");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_through_engine_preserves_queries() {
        let dir = fresh_dir("checkpoint");
        {
            let (e, _) = QueryEngine::open_durable(&dir).unwrap();
            e.create_relation("p", Schema::anonymous(1)).unwrap();
            e.insert("p", tuple![1]).unwrap();
            let ck = e.checkpoint().unwrap();
            assert_eq!(ck.generation, 2);
            e.insert("p", tuple![2]).unwrap();
        }
        let (e, rec) = QueryEngine::open_durable(&dir).unwrap();
        assert_eq!(rec.generation, 2);
        assert_eq!(rec.wal_records_replayed, 1);
        assert_eq!(e.query("p(x)").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_domain_closure_refresh_is_logged() {
        let dir = fresh_dir("dom");
        {
            let (e, _) = QueryEngine::open_durable(&dir).unwrap();
            e.create_relation("q", Schema::anonymous(1)).unwrap();
            e.insert("q", tuple![1]).unwrap();
            e.insert("q", tuple![2]).unwrap();
            e.refresh_domain_view().unwrap();
        }
        let (e, _) = QueryEngine::open_durable(&dir).unwrap();
        // The dom view survived the reopen via its WAL Replace record.
        assert!(e.db().has_relation("dom"));
        assert_eq!(e.db().relation("dom").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
