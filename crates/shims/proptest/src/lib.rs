//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `prop_filter_map`, tuple and range strategies, `Just`, `any`,
//! `prop::collection::vec`, a character-class regex string strategy, and
//! the [`proptest!`] / [`prop_oneof!`] / [`prop_assert!`] macros.
//!
//! Differences from real proptest: no shrinking, no failure persistence
//! (the `proptest-regressions` files are ignored), and case generation is
//! seeded deterministically from the test name so runs are reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// The per-test random source handed to strategies.
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Deterministic RNG for a named test case.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(
            h ^ ((case as u64) << 32 | case as u64),
        ))
    }
}

/// A boxed, clonable strategy: the universal combinator currency here.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> BoxedStrategy<T> {
    fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        BoxedStrategy(Arc::new(f))
    }
}

/// Value-generation strategies (no shrinking).
pub trait Strategy: Clone + 'static {
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy::from_fn(move |rng| self.sample(rng))
    }

    /// Map generated values.
    fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U + 'static,
    {
        BoxedStrategy::from_fn(move |rng| f(self.sample(rng)))
    }

    /// Keep only values the function maps to `Some`.
    fn prop_filter_map<U, F>(self, _whence: &'static str, f: F) -> BoxedStrategy<U>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U> + 'static,
    {
        BoxedStrategy::from_fn(move |rng| {
            for _ in 0..1000 {
                if let Some(v) = f(self.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map: rejected 1000 candidates ({_whence})")
        })
    }

    /// Keep only values satisfying the predicate.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        self.prop_filter_map(_whence, move |v| if f(&v) { Some(v) } else { None })
    }

    /// Recursive strategies: `self` is the leaf; `expand` builds one more
    /// level from the strategy for the level below. At each level the leaf
    /// is mixed back in so generated trees have varied depth.
    fn prop_recursive<F, W>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        F: Fn(BoxedStrategy<Self::Value>) -> W,
        W: Strategy<Value = Self::Value>,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let expanded = expand(current).boxed();
            let leaf = leaf.clone();
            current = BoxedStrategy::from_fn(move |rng| {
                if rng.0.gen_ratio(1, 3) {
                    leaf.sample(rng)
                } else {
                    expanded.sample(rng)
                }
            });
        }
        current
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone + 'static>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized + 'static {
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy::from_fn(|rng| rng.0.gen_bool(0.5))
    }
}

impl Arbitrary for u8 {
    fn arbitrary() -> BoxedStrategy<u8> {
        BoxedStrategy::from_fn(|rng| match rng.0.gen_range(0u32..8) {
            // Over-weight the values wire fuzzing cares about: zeros
            // (short length prefixes), 0xff runs (huge lengths), and
            // ASCII printables (frames that look like text).
            0 => 0,
            1 => 0xff,
            2 => rng.0.gen_range(0x20u32..0x7f) as u8,
            _ => rng.0.gen_range(0u32..256) as u8,
        })
    }
}

impl Arbitrary for i64 {
    fn arbitrary() -> BoxedStrategy<i64> {
        BoxedStrategy::from_fn(|rng| {
            // Mix edge cases in with uniform values, as real proptest does.
            match rng.0.gen_range(0u32..8) {
                0 => 0,
                1 => 1,
                2 => -1,
                3 => i64::MAX,
                4 => i64::MIN,
                _ => rng.0.next_raw() as i64,
            }
        })
    }
}

impl Arbitrary for u64 {
    fn arbitrary() -> BoxedStrategy<u64> {
        BoxedStrategy::from_fn(|rng| match rng.0.gen_range(0u32..8) {
            0 => 0,
            1 => 1,
            2 => u64::MAX,
            _ => rng.0.next_raw(),
        })
    }
}

/// The canonical strategy for a type.
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
    BoxedStrategy::from_fn(move |rng| {
        let i = rng.0.gen_range(0..options.len());
        options[i].sample(rng)
    })
}

/// Strings matching a character-class regex: the subset with literal
/// characters, `[a-z0-9_-]` classes, and `{m,n}` / `?` / `+` / `*`
/// quantifiers (bounded at 8 for the unbounded ones).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_char_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy: {self:?}"));
        let mut out = String::new();
        for (chars, min, max) in &pieces {
            let n = rng.0.gen_range(*min..=*max);
            for _ in 0..n {
                out.push(chars[rng.0.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

type RegexPiece = (Vec<char>, usize, usize);

/// Parse the supported regex subset into (alternatives, min, max) pieces.
fn parse_char_regex(pattern: &str) -> Option<Vec<RegexPiece>> {
    let mut pieces: Vec<RegexPiece> = Vec::new();
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let alternatives: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..].iter().position(|&c| c == ']')? + i;
                let mut class = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        if lo > hi {
                            return None;
                        }
                        class.extend(lo..=hi);
                        j += 3;
                    } else {
                        class.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                class
            }
            '\\' => {
                let c = *chars.get(i + 1)?;
                i += 2;
                vec![c]
            }
            ']' | '{' | '}' | '?' | '*' | '+' | '(' | ')' | '|' | '.' => return None,
            c => {
                i += 1;
                vec![c]
            }
        };
        if alternatives.is_empty() {
            return None;
        }
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..].iter().position(|&c| c == '}')? + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
                    None => {
                        let n = body.parse().ok()?;
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        if min > max {
            return None;
        }
        pieces.push((alternatives, min, max));
    }
    Some(pieces)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{BoxedStrategy, Strategy, TestRng};
    use rand::Rng as _;

    /// Sizes acceptable to [`vec`].
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    /// A vector of values drawn from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> BoxedStrategy<Vec<S::Value>> {
        let (min, max) = size.bounds();
        BoxedStrategy::from_fn(move |rng: &mut TestRng| {
            let n = rng.0.gen_range(min..=max);
            (0..n).map(|_| element.sample(rng)).collect()
        })
    }
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::{
        any, one_of, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The test-harness macro: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::sample(&$strategy, &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_strategy_matches_shape() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z][a-z0-9_-]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-'));
        }
    }

    #[test]
    fn oneof_and_recursive_terminate() {
        let leaf = prop_oneof![Just(1usize), Just(2usize)];
        let tree = leaf.prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| a + b)
        });
        let mut rng = TestRng::for_case("recursive", 3);
        for _ in 0..100 {
            let v = tree.sample(&mut rng);
            assert!(v >= 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_runs(x in 0i64..100, flip in any::<bool>()) {
            prop_assert!((0..100).contains(&x));
            let _ = flip;
        }
    }

    proptest! {
        #[test]
        fn collection_vec_sizes(v in prop::collection::vec(0i64..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| (0..5).contains(&x)));
        }
    }
}
