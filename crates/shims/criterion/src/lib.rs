//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a warm-up pass sizes the batch so a
//! sample takes ≳1 ms, then `sample_size` samples are timed and the median,
//! minimum and maximum per-iteration times are printed. No statistics
//! beyond that, no plots, no baselines — enough to compare strategies by
//! eye and to keep `cargo bench` runnable offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Runs the closure under timing.
pub struct Bencher {
    sample_size: usize,
    /// Median, min, max per-iteration time of the last `iter` call.
    result: Option<(Duration, Duration, Duration)>,
}

/// Is smoke mode on? With `GQ_BENCH_SMOKE` set (CI), every benchmark
/// runs its routine exactly once — enough to prove the bench compiles and
/// executes, without paying for measurement.
fn smoke() -> bool {
    std::env::var_os("GQ_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

impl Bencher {
    /// Time `routine`, batching iterations so one sample is measurable.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if smoke() {
            let t0 = Instant::now();
            black_box(routine());
            let once = t0.elapsed();
            self.result = Some((once, once, once));
            return;
        }
        // Warm up and size the batch: aim for ≥1ms per sample.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed() / batch);
        }
        samples.sort();
        self.result = Some((
            samples[samples.len() / 2],
            samples[0],
            samples[samples.len() - 1],
        ));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Reduce/raise the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.result);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut b, input);
        report(&self.name, &id.to_string(), b.result);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, result: Option<(Duration, Duration, Duration)>) {
    match result {
        Some((median, min, max)) => {
            println!("{group}/{id:<40} median {median:>10.2?}  (min {min:.2?}, max {max:.2?})")
        }
        None => println!("{group}/{id:<40} (no measurement)"),
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: 10,
            result: None,
        };
        f(&mut b);
        report("bench", &id.to_string(), b.result);
        self
    }
}

/// Collect benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// The bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(3);
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
