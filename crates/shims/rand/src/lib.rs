//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny API subset it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) with `gen_range`, `gen_bool`
//! and `gen_ratio`. The generator is splitmix64 — statistically fine for
//! workload synthesis and property tests, not for cryptography.
//!
//! Sequences differ from the real `rand::StdRng` (ChaCha12), so seeds pick
//! different — but still deterministic — instances.

/// Seedable generators.
pub mod rngs {
    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        pub(crate) fn from_state(state: u64) -> Self {
            StdRng { state }
        }

        /// Next raw 64-bit output.
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Seeding, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Scramble so nearby seeds diverge immediately.
        rngs::StdRng::from_state(seed ^ 0x5DEE_CE66_D123_4567)
    }
}

/// A half-open or inclusive range samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_with(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (next() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_with(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (next() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The generator operations this workspace uses.
pub trait Rng {
    fn next_raw(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut next = || self.next_raw();
        range.sample_with(&mut next)
    }

    /// Bernoulli sample with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits → uniform in [0, 1).
        let u = (self.next_raw() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// `numerator`-in-`denominator` sample.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_raw() % denominator as u64) < numerator as u64
    }
}

impl Rng for rngs::StdRng {
    fn next_raw(&mut self) -> u64 {
        self.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..25);
            assert!((3..25).contains(&v));
            let w = rng.gen_range(1i64..=5);
            assert!((1..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4000..6000).contains(&heads), "heads={heads}");
    }
}
