//! Atoms and comparisons — the leaves of calculus formulas.

use crate::{Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// A relational atom `R(t₁,…,tₙ)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// Relation (or view) name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The set of variables occurring in the atom.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.terms
            .iter()
            .filter_map(Term::as_var)
            .cloned()
            .collect()
    }

    /// True iff `v` occurs in the atom.
    pub fn mentions(&self, v: &Var) -> bool {
        self.terms.iter().any(|t| t.as_var() == Some(v))
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// Comparison operators for built-in predicates like `y ≠ cs`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CompareOp {
    /// The operator satisfied exactly when `self` is not — used when a
    /// negation is pushed into a comparison.
    pub fn negated(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Ne,
            CompareOp::Ne => CompareOp::Eq,
            CompareOp::Lt => CompareOp::Ge,
            CompareOp::Le => CompareOp::Gt,
            CompareOp::Gt => CompareOp::Le,
            CompareOp::Ge => CompareOp::Lt,
        }
    }

    /// The operator with swapped operands: `a op b` ⇔ `b op.flipped() a`.
    pub fn flipped(self) -> CompareOp {
        match self {
            CompareOp::Eq => CompareOp::Eq,
            CompareOp::Ne => CompareOp::Ne,
            CompareOp::Lt => CompareOp::Gt,
            CompareOp::Le => CompareOp::Ge,
            CompareOp::Gt => CompareOp::Lt,
            CompareOp::Ge => CompareOp::Le,
        }
    }

    /// Evaluate the operator on two ordered operands.
    pub fn eval<T: Ord>(self, a: &T, b: &T) -> bool {
        match self {
            CompareOp::Eq => a == b,
            CompareOp::Ne => a != b,
            CompareOp::Lt => a < b,
            CompareOp::Le => a <= b,
            CompareOp::Gt => a > b,
            CompareOp::Ge => a >= b,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "≠",
            CompareOp::Lt => "<",
            CompareOp::Le => "≤",
            CompareOp::Gt => ">",
            CompareOp::Ge => "≥",
        };
        write!(f, "{s}")
    }
}

/// A comparison `t₁ op t₂` between terms.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparison {
    /// Left operand.
    pub left: Term,
    /// Operator.
    pub op: CompareOp,
    /// Right operand.
    pub right: Term,
}

impl Comparison {
    /// Build a comparison.
    pub fn new(left: Term, op: CompareOp, right: Term) -> Self {
        Comparison { left, op, right }
    }

    /// Variables occurring in the comparison.
    pub fn vars(&self) -> BTreeSet<Var> {
        self.left
            .as_var()
            .into_iter()
            .chain(self.right.as_var())
            .cloned()
            .collect()
    }

    /// True iff `v` occurs in the comparison.
    pub fn mentions(&self, v: &Var) -> bool {
        self.left.as_var() == Some(v) || self.right.as_var() == Some(v)
    }
}

impl fmt::Debug for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.left, self.op, self.right)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn atom_vars_dedup() {
        let a = Atom::new(
            "p",
            vec![Term::var("x"), Term::constant("c"), Term::var("x")],
        );
        assert_eq!(a.vars().len(), 1);
        assert!(a.mentions(&Var::new("x")));
        assert!(!a.mentions(&Var::new("y")));
    }

    #[test]
    fn compare_op_negation_is_involutive() {
        for op in [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn compare_op_eval() {
        assert!(CompareOp::Lt.eval(&1, &2));
        assert!(!CompareOp::Ge.eval(&1, &2));
        assert!(CompareOp::Ne.eval(&1, &2));
        // negated op evaluates to the complement
        assert_eq!(
            CompareOp::Le.eval(&2, &2),
            !CompareOp::Le.negated().eval(&2, &2)
        );
    }

    #[test]
    fn display_forms() {
        let a = Atom::new("enrolled", vec![Term::var("x"), Term::constant("cs")]);
        assert_eq!(a.to_string(), "enrolled(x,\"cs\")");
        let c = Comparison::new(Term::var("y"), CompareOp::Ne, Term::constant("cs"));
        assert_eq!(c.to_string(), "y ≠ \"cs\"");
    }
}
