//! # gq-calculus — domain relational calculus
//!
//! The query language of the reproduction of Bry (SIGMOD 1989): formulas of
//! an untyped domain relational calculus with quantifier blocks, plus the
//! logical analyses the paper's normalization relies on —
//!
//! * free/bound variables, substitution, alpha-equivalence ([`Formula`]),
//! * subformula polarity ([`Polarity`], §1),
//! * the *governing* relationship between quantified variables
//!   ([`Governing`], §1) used by the miniscope rules' side condition (†),
//! * *ranges* (Definition 1) and the producer/filter split (Definition 5)
//!   ([`is_range_for`], [`split_producer_filter`]),
//! * *restricted quantifications* (Definition 2) and *restricted variables*
//!   (Definition 3) ([`check_restricted_closed`], [`check_restricted_open`]),
//! * a text [`parser`](parse) and a pretty-printer using the paper's symbols.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod alpha;
mod atom;
mod formula;
mod governing;
mod parser;
mod polarity;
mod printer;
mod range;
mod restricted;
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod roundtrip_tests;
mod term;
mod vars;

pub use alpha::{alpha_canonical, alpha_hash};
pub use atom::{Atom, CompareOp, Comparison};
pub use formula::Formula;
pub use governing::Governing;
pub use parser::{
    parse, parse_program, parse_with_max_depth, ParseError, Program, RecursiveDef,
    DEFAULT_MAX_FORMULA_DEPTH,
};
pub use polarity::Polarity;
pub use range::{flatten_and, is_range_for, split_producer_filter, ProducerFilter};
pub use restricted::{check_restricted_closed, check_restricted_open, RestrictionError};
pub use term::{Term, Var};
pub use vars::NameGen;
