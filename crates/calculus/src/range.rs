//! Ranges (Definition 1) and the producer/filter split (Definition 5).
//!
//! A *range* `R[x₁,…,xₙ]` is a subformula that can, by itself, produce all
//! candidate bindings for the variables `x₁,…,xₙ` — the logical counterpart
//! of a variable declaration. Definition 1 builds ranges from atoms (1),
//! conjunctions of ranges (2), disjunctions of ranges over the same
//! variables (3), ranges with attached filter formulas (4), and existential
//! projections of ranges (5).
//!
//! Two deliberate generalizations over the letter of Definition 1, both
//! semantically sound (they only produce domain-independent producers) and
//! both needed for the paper's own examples:
//!
//! * atoms may contain constants and repeated variables (the paper uses
//!   `lecture(y,db)` as a range for `y`);
//! * recognition is relative to a set of *outer* variables that are already
//!   bound by enclosing quantifiers; these act as constants (Proposition 4
//!   case 2b uses `T(y,z)` as the range for `z` under an outer `y`).

use crate::{Formula, Var};
use std::collections::BTreeSet;

/// Free variables of `f` that are not in `outer` (outer variables are bound
/// by enclosing quantifiers and act as constants).
fn inner_free(f: &Formula, outer: &BTreeSet<Var>) -> BTreeSet<Var> {
    f.free_vars().difference(outer).cloned().collect()
}

/// Is `f` a range for exactly the variable set `target`, with `outer`
/// variables treated as constants? (Definition 1.)
pub fn is_range_for(f: &Formula, target: &BTreeSet<Var>, outer: &BTreeSet<Var>) -> bool {
    if target.is_empty() {
        return false;
    }
    if &inner_free(f, outer) != target {
        return false;
    }
    match f {
        // Condition 1 (generalized): a positive atom whose (non-outer)
        // variables are exactly the target.
        Formula::Atom(_) => true,
        // Conditions 2 and 4, generalized over the binary tree shape:
        // flatten the conjunction, split into producer conjuncts (ranges
        // for their own variables) and filter conjuncts; the producers
        // must cover the target.
        Formula::And(..) => split_producer_filter(f, target, outer).is_some(),
        // Condition 3: both disjuncts are ranges for the same variables.
        Formula::Or(a, b) => is_range_for(a, target, outer) && is_range_for(b, target, outer),
        // Condition 5: existential projection of a range.
        Formula::Exists(ys, r) => {
            if ys.iter().any(|y| target.contains(y) || outer.contains(y)) {
                return false;
            }
            let mut wider = target.clone();
            wider.extend(ys.iter().cloned());
            is_range_for(r, &wider, outer)
        }
        _ => false,
    }
}

/// The producer/filter decomposition of a conjunctive formula (Definition 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProducerFilter {
    /// Conjuncts that together form a range for the target variables.
    pub producers: Vec<Formula>,
    /// Remaining conjuncts: evaluated as tests over produced bindings.
    /// May mention outer variables.
    pub filters: Vec<Formula>,
}

impl ProducerFilter {
    /// Reassemble `producers` as a single range formula (left-assoc ∧).
    pub fn producer_formula(&self) -> Formula {
        Formula::and_all(self.producers.clone())
    }

    /// Reassemble `filters` as a single formula, if any.
    pub fn filter_formula(&self) -> Option<Formula> {
        if self.filters.is_empty() {
            None
        } else {
            Some(Formula::and_all(self.filters.clone()))
        }
    }
}

/// Flatten nested conjunctions into a conjunct list (left-to-right).
pub fn flatten_and(f: &Formula) -> Vec<&Formula> {
    let mut out = Vec::new();
    fn walk<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
        if let Formula::And(a, b) = f {
            walk(a, out);
            walk(b, out);
        } else {
            out.push(f);
        }
    }
    walk(f, &mut out);
    out
}

/// Split a (possibly conjunctive) formula into producers and filters with
/// respect to `target` (Definition 5): producer conjuncts are ranges for
/// their own non-outer variables and must jointly cover `target`; all other
/// conjuncts are filters. Returns `None` if the producers cannot cover the
/// target — the quantification is then not *restricted* in the sense of
/// Definition 2.
///
/// The paper leaves the producer choice to a cost model (§2.3: "no choice
/// strategy is described here"); our deterministic strategy follows the
/// paper's stated *preference*: disjunctions are kept in filters whenever
/// the non-disjunctive conjuncts already cover the quantified variables
/// (so they can be evaluated with constrained outer-joins, §3.3), and a
/// disjunctive conjunct is promoted to producer only when needed for
/// coverage (it is then distributed out by Rules 12–14).
pub fn split_producer_filter(
    f: &Formula,
    target: &BTreeSet<Var>,
    outer: &BTreeSet<Var>,
) -> Option<ProducerFilter> {
    let conjuncts = flatten_and(f);
    let mut producers: Vec<Option<Formula>> = vec![None; conjuncts.len()];
    let mut covered: BTreeSet<Var> = BTreeSet::new();
    // Pass 1: non-disjunctive range conjuncts become producers.
    for (i, c) in conjuncts.iter().enumerate() {
        if matches!(c, Formula::Or(..)) {
            continue;
        }
        let vars = inner_free(c, outer);
        if !vars.is_empty() && vars.is_subset(target) && is_range_for(c, &vars, outer) {
            covered.extend(vars.iter().cloned());
            producers[i] = Some((*c).clone());
        }
    }
    // Pass 2: promote disjunctive range conjuncts only if they add coverage.
    for (i, c) in conjuncts.iter().enumerate() {
        if covered == *target {
            break;
        }
        if !matches!(c, Formula::Or(..)) {
            continue;
        }
        let vars = inner_free(c, outer);
        if vars.is_empty() || !vars.is_subset(target) || vars.is_subset(&covered) {
            continue;
        }
        if is_range_for(c, &vars, outer) {
            covered.extend(vars.iter().cloned());
            producers[i] = Some((*c).clone());
        }
    }
    if &covered != target {
        return None;
    }
    let mut prods = Vec::new();
    let mut filters = Vec::new();
    for (i, c) in conjuncts.iter().enumerate() {
        match producers[i].take() {
            Some(p) => prods.push(p),
            None => filters.push((*c).clone()),
        }
    }
    Some(ProducerFilter {
        producers: prods,
        filters,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn vs(names: &[&str]) -> BTreeSet<Var> {
        names.iter().map(Var::new).collect()
    }
    fn at(r: &str, args: &[&str]) -> Formula {
        Formula::atom(r, args.iter().map(Term::var).collect())
    }

    #[test]
    fn atom_is_range_for_its_vars() {
        let f = at("member", &["x", "z"]);
        assert!(is_range_for(&f, &vs(&["x", "z"]), &vs(&[])));
        assert!(!is_range_for(&f, &vs(&["x"]), &vs(&[])));
        // with z outer it is a range for x alone
        assert!(is_range_for(&f, &vs(&["x"]), &vs(&["z"])));
    }

    #[test]
    fn atom_with_constant_is_range() {
        // lecture(y, "db") is a range for y (the paper's cs-lecture example)
        let f = Formula::atom("lecture", vec![Term::var("y"), Term::constant("db")]);
        assert!(is_range_for(&f, &vs(&["y"]), &vs(&[])));
    }

    #[test]
    fn negation_is_not_a_range() {
        let f = Formula::not(at("p", &["x"]));
        assert!(!is_range_for(&f, &vs(&["x"]), &vs(&[])));
    }

    #[test]
    fn conjunction_of_ranges_covers_union() {
        // condition 2: p(x) ∧ q(y) ranges x,y
        let f = Formula::and(at("p", &["x"]), at("q", &["y"]));
        assert!(is_range_for(&f, &vs(&["x", "y"]), &vs(&[])));
    }

    #[test]
    fn range_with_filter_condition4() {
        // professor(x) ∧ (member(x,cs) ∨ skill(x,math)) — producer + filter.
        // Here the disjunction happens to be a range too (both disjuncts
        // over exactly {x}), so it is recognized either way.
        let disj = Formula::or(
            Formula::atom("member", vec![Term::var("x"), Term::constant("cs")]),
            Formula::atom("skill", vec![Term::var("x"), Term::constant("math")]),
        );
        let f = Formula::and(at("professor", &["x"]), disj);
        assert!(is_range_for(&f, &vs(&["x"]), &vs(&[])));
        // With a genuinely non-range filter (a negation):
        let f2 = Formula::and(at("professor", &["x"]), Formula::not(at("dean", &["x"])));
        assert!(is_range_for(&f2, &vs(&["x"]), &vs(&[])));
    }

    #[test]
    fn disjunction_must_cover_same_vars() {
        // (r(x1) ∨ s(x2)) is NOT a range for {x1,x2} — the paper's
        // rejected query F1 (§2.1, after Definition 2).
        let f = Formula::or(at("r", &["x1"]), at("s", &["x2"]));
        assert!(!is_range_for(&f, &vs(&["x1", "x2"]), &vs(&[])));
    }

    #[test]
    fn disjunction_of_ranges_same_vars_ok() {
        // (student(x) ∧ makes(x,PhD)) ∨ prof(x) — the §2.3 producer
        let f = Formula::or(
            Formula::and(
                at("student", &["x"]),
                Formula::atom("makes", vec![Term::var("x"), Term::constant("PhD")]),
            ),
            at("prof", &["x"]),
        );
        assert!(is_range_for(&f, &vs(&["x"]), &vs(&[])));
    }

    #[test]
    fn existential_projection_condition5() {
        // ∃yz p(x,y,z) is a range for x
        let f = Formula::exists(
            vec![Var::new("y"), Var::new("z")],
            at("p", &["x", "y", "z"]),
        );
        assert!(is_range_for(&f, &vs(&["x"]), &vs(&[])));
        assert!(!is_range_for(&f, &vs(&["x", "y"]), &vs(&[])));
    }

    #[test]
    fn split_finds_producers_and_filters() {
        // member(x,z) ∧ ¬skill(x,db): producer member, filter ¬skill
        let f = Formula::and(
            at("member", &["x", "z"]),
            Formula::not(Formula::atom(
                "skill",
                vec![Term::var("x"), Term::constant("db")],
            )),
        );
        let pf = split_producer_filter(&f, &vs(&["x", "z"]), &vs(&[])).unwrap();
        assert_eq!(pf.producers.len(), 1);
        assert_eq!(pf.filters.len(), 1);
        assert_eq!(pf.producer_formula(), at("member", &["x", "z"]));
    }

    #[test]
    fn split_fails_when_uncovered() {
        // ¬p(x): no producer can bind x
        let f = Formula::not(at("p", &["x"]));
        assert!(split_producer_filter(&f, &vs(&["x"]), &vs(&[])).is_none());
    }

    #[test]
    fn split_with_outer_variable_filter() {
        // range for z under outer x: member(x,z) where x outer? No — here:
        // lecture(z) ∧ attends(x,z) with x outer: both conjuncts are
        // ranges for z relative to outer {x}; both become producers.
        let f = Formula::and(at("lecture", &["z"]), at("attends", &["x", "z"]));
        let pf = split_producer_filter(&f, &vs(&["z"]), &vs(&["x"])).unwrap();
        assert_eq!(pf.producers.len(), 2);
        assert!(pf.filters.is_empty());
    }

    #[test]
    fn disjunctive_conjunct_kept_as_filter_when_covered() {
        // §2.3 Q₄: professor(x) ∧ (member(x,cs) ∨ skill(x,math)) ∧ speaks(x,fr):
        // professor covers x, so the disjunction stays a filter.
        let disj = Formula::or(
            Formula::atom("member", vec![Term::var("x"), Term::constant("cs")]),
            Formula::atom("skill", vec![Term::var("x"), Term::constant("math")]),
        );
        let f = Formula::and(
            Formula::and(at("professor", &["x"]), disj.clone()),
            Formula::atom("speaks", vec![Term::var("x"), Term::constant("french")]),
        );
        let pf = split_producer_filter(&f, &vs(&["x"]), &vs(&[])).unwrap();
        // professor and speaks are both (atomic) producers; the essential
        // point is that the disjunction is kept as a filter.
        assert_eq!(pf.producers.len(), 2);
        assert_eq!(pf.filters, vec![disj]);
    }

    #[test]
    fn disjunctive_conjunct_promoted_when_needed() {
        // §2.3 Q₁: [(student ∧ makes) ∨ prof] ∧ (speaks ∨ speaks): only the
        // first disjunction can produce x; the second stays a filter.
        let producer = Formula::or(
            Formula::and(
                at("student", &["x"]),
                Formula::atom("makes", vec![Term::var("x"), Term::constant("PhD")]),
            ),
            at("prof", &["x"]),
        );
        let filter = Formula::or(
            Formula::atom("speaks", vec![Term::var("x"), Term::constant("french")]),
            Formula::atom("speaks", vec![Term::var("x"), Term::constant("german")]),
        );
        let f = Formula::and(producer.clone(), filter.clone());
        let pf = split_producer_filter(&f, &vs(&["x"]), &vs(&[])).unwrap();
        assert_eq!(pf.producers, vec![producer]);
        assert_eq!(pf.filters, vec![filter]);
    }

    #[test]
    fn flatten_and_order() {
        let f = Formula::and(
            Formula::and(at("a", &["x"]), at("b", &["x"])),
            at("c", &["x"]),
        );
        let c = flatten_and(&f);
        assert_eq!(c.len(), 3);
        assert_eq!(c[0], &at("a", &["x"]));
        assert_eq!(c[2], &at("c", &["x"]));
    }
}
