//! Variable analyses: free/bound variables, substitution, renaming,
//! alpha-equivalence.

use crate::{Formula, Term, Var};
use std::collections::{BTreeSet, HashMap};

impl Formula {
    /// The set of free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::Atom(a) => a.vars(),
            Formula::Compare(c) => c.vars(),
            Formula::Not(f) => f.free_vars(),
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => {
                let mut s = a.free_vars();
                s.extend(b.free_vars());
                s
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let mut s = f.free_vars();
                for v in vs {
                    s.remove(v);
                }
                s
            }
        }
    }

    /// True iff the formula has no free variables (a *closed* formula — the
    /// calculus counterpart of a yes/no query).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// All variables bound by some quantifier in the formula.
    pub fn bound_vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        self.collect_bound(&mut s);
        s
    }

    fn collect_bound(&self, out: &mut BTreeSet<Var>) {
        if let Formula::Exists(vs, _) | Formula::Forall(vs, _) = self {
            out.extend(vs.iter().cloned());
        }
        for c in self.children() {
            c.collect_bound(out);
        }
    }

    /// True iff variable `v` occurs (free or bound) anywhere in the formula.
    /// This is the "occurs in F" test of Rules 6–9.
    pub fn mentions_var(&self, v: &Var) -> bool {
        match self {
            Formula::Atom(a) => a.mentions(v),
            Formula::Compare(c) => c.mentions(v),
            _ => self.children().iter().any(|c| c.mentions_var(v)),
        }
    }

    /// Capture-avoiding *free-variable* substitution: replace every free
    /// occurrence of `v` with term `t`.
    ///
    /// Callers must ensure `t`'s variables are not captured by quantifiers
    /// of `self` (the engine standardizes formulas apart first); a
    /// `debug_assert` guards this.
    pub fn substitute(&self, v: &Var, t: &Term) -> Formula {
        match self {
            Formula::Atom(a) => {
                let mut a = a.clone();
                for term in &mut a.terms {
                    if term.as_var() == Some(v) {
                        *term = t.clone();
                    }
                }
                Formula::Atom(a)
            }
            Formula::Compare(c) => {
                let mut c = c.clone();
                if c.left.as_var() == Some(v) {
                    c.left = t.clone();
                }
                if c.right.as_var() == Some(v) {
                    c.right = t.clone();
                }
                Formula::Compare(c)
            }
            Formula::Not(f) => Formula::not(f.substitute(v, t)),
            Formula::And(a, b) => Formula::and(a.substitute(v, t), b.substitute(v, t)),
            Formula::Or(a, b) => Formula::or(a.substitute(v, t), b.substitute(v, t)),
            Formula::Implies(a, b) => Formula::implies(a.substitute(v, t), b.substitute(v, t)),
            Formula::Iff(a, b) => Formula::iff(a.substitute(v, t), b.substitute(v, t)),
            Formula::Exists(vs, f) => {
                if vs.contains(v) {
                    self.clone() // v is shadowed; no free occurrences below
                } else {
                    debug_assert!(
                        t.as_var().is_none_or(|tv| !vs.contains(tv)),
                        "substitution would be captured"
                    );
                    Formula::exists(vs.clone(), f.substitute(v, t))
                }
            }
            Formula::Forall(vs, f) => {
                if vs.contains(v) {
                    self.clone()
                } else {
                    debug_assert!(
                        t.as_var().is_none_or(|tv| !vs.contains(tv)),
                        "substitution would be captured"
                    );
                    Formula::forall(vs.clone(), f.substitute(v, t))
                }
            }
        }
    }

    /// Rename bound variables so that (a) no variable is quantified twice
    /// and (b) no bound variable shares a name with a free variable.
    /// Fresh names are drawn from `gen`.
    pub fn standardize_apart(&self, gen: &mut NameGen) -> Formula {
        let mut taken: BTreeSet<Var> = self.free_vars();
        // Fresh names must avoid every variable of the formula — including
        // binders deeper than the current walk position, which `taken`
        // accumulates only as they are visited (a fresh name colliding
        // with an unvisited inner binder would be captured).
        let mut forbidden = self.bound_vars();
        forbidden.extend(taken.iter().cloned());
        self.rename_bound(&mut taken, &forbidden, gen)
    }

    /// Rename every bound variable of `self` that collides with `taken`,
    /// extending `taken` with all binders of the result. Used by rewriting
    /// rules that duplicate a subformula (Rules 10, 11, 14): the copy's
    /// binders must not collide with anything in the enclosing formula.
    pub fn rename_bound_avoiding(&self, taken: &mut BTreeSet<Var>, gen: &mut NameGen) -> Formula {
        let mut forbidden = self.bound_vars();
        forbidden.extend(taken.iter().cloned());
        self.rename_bound(taken, &forbidden, gen)
    }

    fn rename_bound(
        &self,
        taken: &mut BTreeSet<Var>,
        forbidden: &BTreeSet<Var>,
        gen: &mut NameGen,
    ) -> Formula {
        match self {
            Formula::Atom(_) | Formula::Compare(_) => self.clone(),
            Formula::Not(f) => Formula::not(f.rename_bound(taken, forbidden, gen)),
            Formula::And(a, b) => Formula::and(
                a.rename_bound(taken, forbidden, gen),
                b.rename_bound(taken, forbidden, gen),
            ),
            Formula::Or(a, b) => Formula::or(
                a.rename_bound(taken, forbidden, gen),
                b.rename_bound(taken, forbidden, gen),
            ),
            Formula::Implies(a, b) => Formula::implies(
                a.rename_bound(taken, forbidden, gen),
                b.rename_bound(taken, forbidden, gen),
            ),
            Formula::Iff(a, b) => Formula::iff(
                a.rename_bound(taken, forbidden, gen),
                b.rename_bound(taken, forbidden, gen),
            ),
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let mut body = (**f).clone();
                let mut new_vs = Vec::with_capacity(vs.len());
                for v in vs {
                    if taken.contains(v) {
                        let fresh = loop {
                            let c = gen.fresh_like(v, taken);
                            if !forbidden.contains(&c) {
                                break c;
                            }
                        };
                        body = body.substitute(v, &Term::Var(fresh.clone()));
                        taken.insert(fresh.clone());
                        new_vs.push(fresh);
                    } else {
                        taken.insert(v.clone());
                        new_vs.push(v.clone());
                    }
                }
                let body = body.rename_bound(taken, forbidden, gen);
                match self {
                    Formula::Exists(..) => Formula::exists(new_vs, body),
                    _ => Formula::forall(new_vs, body),
                }
            }
        }
    }

    /// Alpha-equivalence: equality up to renaming of bound variables and
    /// reordering within a quantifier block (the paper's `∃x₁…xₙ` blocks
    /// are order-insensitive).
    pub fn alpha_eq(&self, other: &Formula) -> bool {
        self.canonical_rename() == other.canonical_rename()
    }

    /// Canonical form for alpha-comparison: bound variables renamed to
    /// `#0, #1, …` in traversal order; quantifier blocks sorted by the first
    /// occurrence position of each variable in the body.
    pub fn canonical_rename(&self) -> Formula {
        let mut counter = 0usize;
        self.canon(&mut HashMap::new(), &mut counter)
    }

    fn canon(&self, map: &mut HashMap<Var, Var>, counter: &mut usize) -> Formula {
        match self {
            Formula::Atom(a) => {
                let mut a = a.clone();
                for t in &mut a.terms {
                    if let Some(v) = t.as_var() {
                        if let Some(nv) = map.get(v) {
                            *t = Term::Var(nv.clone());
                        }
                    }
                }
                Formula::Atom(a)
            }
            Formula::Compare(c) => {
                let mut c = c.clone();
                for t in [&mut c.left, &mut c.right] {
                    if let Some(v) = t.as_var() {
                        if let Some(nv) = map.get(v) {
                            *t = Term::Var(nv.clone());
                        }
                    }
                }
                Formula::Compare(c)
            }
            Formula::Not(f) => Formula::not(f.canon(map, counter)),
            Formula::And(a, b) => Formula::and(a.canon(map, counter), b.canon(map, counter)),
            Formula::Or(a, b) => Formula::or(a.canon(map, counter), b.canon(map, counter)),
            Formula::Implies(a, b) => {
                Formula::implies(a.canon(map, counter), b.canon(map, counter))
            }
            Formula::Iff(a, b) => Formula::iff(a.canon(map, counter), b.canon(map, counter)),
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                // Sort block variables by first occurrence in the body so
                // ∃xy F and ∃yx F canonicalize identically.
                let mut ordered: Vec<Var> = vs.clone();
                ordered.sort_by_key(|v| f.first_occurrence(v).unwrap_or(usize::MAX));
                let mut new_vs = Vec::with_capacity(ordered.len());
                let saved: Vec<(Var, Option<Var>)> = ordered
                    .iter()
                    .map(|v| (v.clone(), map.get(v).cloned()))
                    .collect();
                for v in &ordered {
                    let nv = Var::new(format!("#{counter}"));
                    *counter += 1;
                    map.insert(v.clone(), nv.clone());
                    new_vs.push(nv);
                }
                let body = f.canon(map, counter);
                for (v, old) in saved {
                    match old {
                        Some(o) => map.insert(v, o),
                        None => map.remove(&v),
                    };
                }
                match self {
                    Formula::Exists(..) => Formula::exists(new_vs, body),
                    _ => Formula::forall(new_vs, body),
                }
            }
        }
    }

    /// Preorder position of the first *term slot* holding `v`, if any.
    /// Counting term slots (not just leaves) breaks ties between variables
    /// that first appear in the same atom, so `∃x,y q(x,y)` and
    /// `∃y,x q(x,y)` canonicalize identically.
    fn first_occurrence(&self, v: &Var) -> Option<usize> {
        fn walk(f: &Formula, v: &Var, pos: &mut usize) -> Option<usize> {
            match f {
                Formula::Atom(a) => {
                    for t in &a.terms {
                        let here = *pos;
                        *pos += 1;
                        if t.as_var() == Some(v) {
                            return Some(here);
                        }
                    }
                    None
                }
                Formula::Compare(c) => {
                    for t in [&c.left, &c.right] {
                        let here = *pos;
                        *pos += 1;
                        if t.as_var() == Some(v) {
                            return Some(here);
                        }
                    }
                    None
                }
                _ => {
                    for ch in f.children() {
                        if let Some(p) = walk(ch, v, pos) {
                            return Some(p);
                        }
                    }
                    None
                }
            }
        }
        walk(self, v, &mut 0)
    }
}

/// Generator of fresh variable names.
///
/// Fresh names use the reserved prefix `_v`; the parser rejects identifiers
/// with this prefix so generated names can never collide with user names.
#[derive(Debug, Default, Clone)]
pub struct NameGen {
    next: usize,
}

impl NameGen {
    /// A generator starting at `_v0`.
    pub fn new() -> Self {
        NameGen::default()
    }

    /// Produce a fresh variable.
    pub fn fresh(&mut self) -> Var {
        let v = Var::new(format!("_v{}", self.next));
        self.next += 1;
        v
    }

    /// Produce a fresh variable avoiding the `taken` set. The `like`
    /// argument is only a readability hint and is currently unused in the
    /// generated name.
    pub fn fresh_like(&mut self, _like: &Var, taken: &BTreeSet<Var>) -> Var {
        loop {
            let v = self.fresh();
            if !taken.contains(&v) {
                return v;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn p(v: &str) -> Formula {
        Formula::atom("p", vec![Term::var(v)])
    }
    fn q2(a: &str, b: &str) -> Formula {
        Formula::atom("q", vec![Term::var(a), Term::var(b)])
    }

    #[test]
    fn free_vars_respect_binding() {
        let f = Formula::exists1("x", q2("x", "y"));
        let fv = f.free_vars();
        assert!(fv.contains(&Var::new("y")));
        assert!(!fv.contains(&Var::new("x")));
        assert!(!f.is_closed());
        assert!(Formula::exists(vec![Var::new("x"), Var::new("y")], q2("x", "y")).is_closed());
    }

    #[test]
    fn substitute_hits_only_free_occurrences() {
        // p(x) ∧ ∃x p(x) — only the first x is free
        let f = Formula::and(p("x"), Formula::exists1("x", p("x")));
        let g = f.substitute(&Var::new("x"), &Term::constant("c"));
        assert_eq!(
            g,
            Formula::and(
                Formula::atom("p", vec![Term::constant("c")]),
                Formula::exists1("x", p("x"))
            )
        );
    }

    #[test]
    fn standardize_apart_renames_rebinding() {
        // ∃x p(x) ∧ ∃x p(x): second block must get a fresh name
        let f = Formula::and(Formula::exists1("x", p("x")), Formula::exists1("x", p("x")));
        let g = f.standardize_apart(&mut NameGen::new());
        let bound = g.bound_vars();
        assert_eq!(bound.len(), 2);
        assert!(f.alpha_eq(&g));
    }

    #[test]
    fn standardize_apart_avoids_free_names() {
        // free x outside, bound x inside
        let f = Formula::and(p("x"), Formula::exists1("x", p("x")));
        let g = f.standardize_apart(&mut NameGen::new());
        assert!(!g.bound_vars().contains(&Var::new("x")));
        assert!(g.free_vars().contains(&Var::new("x")));
    }

    #[test]
    fn alpha_eq_block_order_irrelevant() {
        let f = Formula::exists(vec![Var::new("x"), Var::new("y")], q2("x", "y"));
        let g = Formula::exists(vec![Var::new("y"), Var::new("x")], q2("x", "y"));
        assert!(f.alpha_eq(&g));
    }

    #[test]
    fn alpha_eq_renaming() {
        let f = Formula::exists1("x", p("x"));
        let g = Formula::exists1("z", p("z"));
        assert!(f.alpha_eq(&g));
        assert!(!f.alpha_eq(&Formula::exists1(
            "z",
            Formula::atom("q", vec![Term::var("z")])
        )));
    }

    #[test]
    fn alpha_eq_distinguishes_quantifiers() {
        let f = Formula::exists1("x", p("x"));
        let g = Formula::forall1("x", p("x"));
        assert!(!f.alpha_eq(&g));
    }

    #[test]
    fn mentions_var_sees_bound_occurrences() {
        let f = Formula::exists1("x", p("x"));
        assert!(f.mentions_var(&Var::new("x")));
        assert!(!f.mentions_var(&Var::new("y")));
    }

    #[test]
    fn namegen_reserved_prefix() {
        let mut g = NameGen::new();
        assert_eq!(g.fresh().name(), "_v0");
        assert_eq!(g.fresh().name(), "_v1");
    }
}
