//! Polarity of subformulas.
//!
//! §1: "A subformula A has *positive polarity* in a formula F if A is
//! embedded in zero or in an even number of negations in F (the left hand
//! side of an implication being considered as an implicit negation)."
//! Subformulas of an equivalence occur with *both* polarities.

use crate::Formula;

/// The polarity of a subformula occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Polarity {
    /// Even number of (explicit or implicit) negations.
    Positive,
    /// Odd number of negations.
    Negative,
    /// Under an equivalence: occurs with both polarities.
    Both,
}

impl Polarity {
    /// The polarity after passing through one negation.
    pub fn flip(self) -> Polarity {
        match self {
            Polarity::Positive => Polarity::Negative,
            Polarity::Negative => Polarity::Positive,
            Polarity::Both => Polarity::Both,
        }
    }
}

impl Formula {
    /// Visit every subformula together with its polarity (preorder; the
    /// whole formula is visited with `start` polarity).
    pub fn for_each_with_polarity(&self, start: Polarity, f: &mut impl FnMut(&Formula, Polarity)) {
        f(self, start);
        match self {
            Formula::Atom(_) | Formula::Compare(_) => {}
            Formula::Not(g) => g.for_each_with_polarity(start.flip(), f),
            Formula::And(a, b) | Formula::Or(a, b) => {
                a.for_each_with_polarity(start, f);
                b.for_each_with_polarity(start, f);
            }
            Formula::Implies(a, b) => {
                a.for_each_with_polarity(start.flip(), f);
                b.for_each_with_polarity(start, f);
            }
            Formula::Iff(a, b) => {
                a.for_each_with_polarity(Polarity::Both, f);
                b.for_each_with_polarity(Polarity::Both, f);
            }
            Formula::Exists(_, g) | Formula::Forall(_, g) => {
                g.for_each_with_polarity(start, f);
            }
        }
    }

    /// Polarities with which a syntactically equal subformula occurs in
    /// `self` (a subformula may occur several times).
    pub fn polarities_of(&self, sub: &Formula) -> Vec<Polarity> {
        let mut out = Vec::new();
        self.for_each_with_polarity(Polarity::Positive, &mut |g, p| {
            if g == sub {
                out.push(p);
            }
        });
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn p(v: &str) -> Formula {
        Formula::atom("p", vec![Term::var(v)])
    }
    fn q(v: &str) -> Formula {
        Formula::atom("q", vec![Term::var(v)])
    }

    #[test]
    fn negation_flips() {
        let f = Formula::not(Formula::not(p("x")));
        assert_eq!(f.polarities_of(&p("x")), vec![Polarity::Positive]);
        let g = Formula::not(p("x"));
        assert_eq!(g.polarities_of(&p("x")), vec![Polarity::Negative]);
    }

    #[test]
    fn implication_lhs_is_implicit_negation() {
        let f = Formula::implies(p("x"), q("x"));
        assert_eq!(f.polarities_of(&p("x")), vec![Polarity::Negative]);
        assert_eq!(f.polarities_of(&q("x")), vec![Polarity::Positive]);
    }

    #[test]
    fn iff_gives_both() {
        let f = Formula::iff(p("x"), q("x"));
        assert_eq!(f.polarities_of(&p("x")), vec![Polarity::Both]);
    }

    #[test]
    fn quantifiers_preserve_polarity() {
        let f = Formula::not(Formula::forall1("x", Formula::implies(p("x"), q("x"))));
        // p(x): under ¬ then lhs of ⇒ → positive again
        assert_eq!(f.polarities_of(&p("x")), vec![Polarity::Positive]);
        assert_eq!(f.polarities_of(&q("x")), vec![Polarity::Negative]);
    }

    #[test]
    fn multiple_occurrences_reported() {
        let f = Formula::and(p("x"), Formula::not(p("x")));
        assert_eq!(
            f.polarities_of(&p("x")),
            vec![Polarity::Positive, Polarity::Negative]
        );
    }
}
