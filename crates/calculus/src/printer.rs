//! Pretty-printing of formulas (the `Display` impl).
//!
//! Output uses the paper's symbols (∃ ∀ ∧ ∨ ¬ ⇒ ⇔) with minimal
//! parentheses. Precedence, loosest to tightest: ⇔, ⇒, ∨, ∧, ¬/quantifiers.

use crate::Formula;
use std::fmt;

#[derive(Clone, Copy, PartialEq, PartialOrd)]
enum Prec {
    Iff = 0,
    Implies = 1,
    Or = 2,
    And = 3,
    Unary = 4,
}

fn prec(f: &Formula) -> Prec {
    match f {
        // Quantifiers parse with maximal scope, so an embedded quantified
        // subformula must always be parenthesized.
        Formula::Exists(..) | Formula::Forall(..) => Prec::Iff,
        Formula::Iff(..) => Prec::Iff,
        Formula::Implies(..) => Prec::Implies,
        Formula::Or(..) => Prec::Or,
        Formula::And(..) => Prec::And,
        _ => Prec::Unary,
    }
}

fn write_prec(f: &Formula, min: Prec, out: &mut fmt::Formatter<'_>) -> fmt::Result {
    let need_parens = (prec(f) as u8) < (min as u8);
    if need_parens {
        write!(out, "(")?;
    }
    match f {
        Formula::Atom(a) => write!(out, "{a}")?,
        Formula::Compare(c) => write!(out, "{c}")?,
        Formula::Not(g) => {
            write!(out, "¬")?;
            write_prec(g, Prec::Unary, out)?;
        }
        Formula::And(a, b) => {
            // ∧ is printed left-associatively: a right-nested conjunction
            // is parenthesized so parsing rebuilds the exact tree.
            write_prec(a, Prec::And, out)?;
            write!(out, " ∧ ")?;
            write_prec(b, Prec::Unary, out)?;
        }
        Formula::Or(a, b) => {
            write_prec(a, Prec::Or, out)?;
            write!(out, " ∨ ")?;
            write_prec(b, Prec::And, out)?;
        }
        Formula::Implies(a, b) => {
            // ⇒ is right-associative and non-chaining; parenthesize a
            // nested implication on the left.
            write_prec(a, Prec::Or, out)?;
            write!(out, " ⇒ ")?;
            write_prec(b, Prec::Implies, out)?;
        }
        Formula::Iff(a, b) => {
            write_prec(a, Prec::Implies, out)?;
            write!(out, " ⇔ ")?;
            write_prec(b, Prec::Implies, out)?;
        }
        Formula::Exists(vs, g) | Formula::Forall(vs, g) => {
            let symbol = if matches!(f, Formula::Exists(..)) {
                "∃"
            } else {
                "∀"
            };
            write!(out, "{symbol}")?;
            for (i, v) in vs.iter().enumerate() {
                if i > 0 {
                    write!(out, ",")?;
                }
                write!(out, "{v}")?;
            }
            write!(out, " ")?;
            // A comparison body starting with a bare variable would be
            // ambiguous with the space-separated variable list
            // (`∀x z1 ≥ c`); parenthesize comparisons.
            if matches!(**g, Formula::Compare(_)) {
                write!(out, "(")?;
                write_prec(g, Prec::Iff, out)?;
                write!(out, ")")?;
            } else {
                write_prec(g, Prec::Unary, out)?;
            }
        }
    }
    if need_parens {
        write!(out, ")")?;
    }
    Ok(())
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_prec(self, Prec::Iff, f)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn p(v: &str) -> Formula {
        Formula::atom("p", vec![Term::var(v)])
    }
    fn q(v: &str) -> Formula {
        Formula::atom("q", vec![Term::var(v)])
    }

    #[test]
    fn atoms_and_connectives() {
        let f = Formula::and(p("x"), Formula::or(q("x"), p("y")));
        assert_eq!(f.to_string(), "p(x) ∧ (q(x) ∨ p(y))");
    }

    #[test]
    fn no_redundant_parens_for_and_chain() {
        let f = Formula::and(Formula::and(p("x"), q("x")), p("y"));
        assert_eq!(f.to_string(), "p(x) ∧ q(x) ∧ p(y)");
    }

    #[test]
    fn quantifier_blocks() {
        let f = Formula::exists(vec!["x".into(), "y".into()], Formula::and(p("x"), q("y")));
        assert_eq!(f.to_string(), "∃x,y (p(x) ∧ q(y))");
    }

    #[test]
    fn negation_parenthesizes_compounds() {
        let f = Formula::not(Formula::and(p("x"), q("x")));
        assert_eq!(f.to_string(), "¬(p(x) ∧ q(x))");
        let g = Formula::not(p("x"));
        assert_eq!(g.to_string(), "¬p(x)");
    }

    #[test]
    fn implication_and_iff() {
        let f = Formula::forall1("y", Formula::implies(p("y"), q("y")));
        assert_eq!(f.to_string(), "∀y (p(y) ⇒ q(y))");
        let g = Formula::iff(p("x"), q("x"));
        assert_eq!(g.to_string(), "p(x) ⇔ q(x)");
    }
}
