//! Terms of the domain relational calculus: variables and constants.

use gq_storage::Value;
use std::fmt;
use std::sync::Arc;

/// A domain variable.
///
/// Variables are compared by name. Cloning is cheap (shared string), which
/// matters because the rewriting engine copies formulas freely.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(Arc<str>);

impl Var {
    /// Create a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// The variable's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A domain variable.
    Var(Var),
    /// A constant from the database domain.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Var::new(name))
    }

    /// A constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }

    /// True iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Str(s)) => write!(f, "\"{s}\""),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn var_equality_by_name() {
        assert_eq!(Var::new("x"), Var::from("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn term_accessors() {
        let t = Term::var("x");
        assert!(t.is_var());
        assert_eq!(t.as_var().unwrap().name(), "x");
        assert!(t.as_const().is_none());

        let c = Term::constant("cs");
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(&Value::str("cs")));
    }

    #[test]
    fn display_quotes_string_constants() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant("cs").to_string(), "\"cs\"");
        assert_eq!(Term::constant(42).to_string(), "42");
    }
}
