//! Structural hashing of formulas modulo bound-variable renaming.
//!
//! The plan cache (gq-core) keys entries on the *meaning* of a query, not
//! its spelling: `∃x p(x)` and `∃y p(y)` must share a cache entry, as must
//! `∃x,y q(x,y)` and `∃y,x q(x,y)` (the paper's quantifier blocks are
//! order-insensitive sets). Both reduce here to a single *alpha-canonical
//! string* — the pretty-printed [`Formula::canonical_rename`] form, whose
//! bound variables are numbered `#0, #1, …` in traversal order — plus a
//! 64-bit FNV-1a hash of that string for cheap bucketing.
//!
//! The canonical *string* (not just the hash) is what cache lookups compare,
//! so hash collisions can never alias two inequivalent queries to the same
//! plan.

use crate::Formula;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// The alpha-canonical rendering of a formula: bound variables renamed to
/// `#0, #1, …` in traversal order (block order normalized by first
/// occurrence in the body), free variables and constants kept verbatim.
///
/// Two formulas have equal canonical strings iff they are
/// [alpha-equivalent](Formula::alpha_eq).
pub fn alpha_canonical(f: &Formula) -> String {
    f.canonical_rename().to_string()
}

/// A 64-bit structural hash of `f` modulo bound-variable renaming:
/// FNV-1a over [`alpha_canonical`]. Alpha-equivalent formulas hash
/// identically; inequivalent formulas collide only with FNV's usual
/// (negligible, but nonzero) probability — callers needing exactness
/// compare the canonical strings.
pub fn alpha_hash(f: &Formula) -> u64 {
    fnv1a(alpha_canonical(f).as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::parse;

    fn p(s: &str) -> Formula {
        parse(s).unwrap()
    }

    #[test]
    fn renamed_bound_vars_share_a_key() {
        let f = p("exists x. p(x)");
        let g = p("exists y. p(y)");
        assert_eq!(alpha_canonical(&f), alpha_canonical(&g));
        assert_eq!(alpha_hash(&f), alpha_hash(&g));
    }

    #[test]
    fn block_order_is_irrelevant() {
        let f = p("exists x, y. q(x,y)");
        let g = p("exists y, x. q(x,y)");
        assert_eq!(alpha_canonical(&f), alpha_canonical(&g));
    }

    #[test]
    fn free_variables_are_kept_verbatim() {
        let f = p("p(x)");
        let g = p("p(y)");
        assert_ne!(alpha_canonical(&f), alpha_canonical(&g));
    }

    #[test]
    fn quantifier_kind_distinguishes() {
        let f = p("exists x. p(x)");
        let g = p("forall x. p(x)");
        assert_ne!(alpha_canonical(&f), alpha_canonical(&g));
        assert_ne!(alpha_hash(&f), alpha_hash(&g));
    }

    #[test]
    fn nested_rebinding_canonicalizes() {
        // x is rebound in the inner block; renaming either binder is still
        // the same query.
        let f = p("exists x. (p(x) and exists x. q(x,x))");
        let g = p("exists u. (p(u) and exists v. q(v,v))");
        assert_eq!(alpha_canonical(&f), alpha_canonical(&g));
    }

    #[test]
    fn constants_distinguish() {
        let f = p("exists x. enrolled(x,\"cs\")");
        let g = p("exists x. enrolled(x,\"math\")");
        assert_ne!(alpha_canonical(&f), alpha_canonical(&g));
    }

    #[test]
    fn hash_matches_canonical_equality_on_samples() {
        let samples = [
            "p(x)",
            "exists x. p(x)",
            "forall x. (p(x) -> q(x))",
            "exists x, y. (q(x,y) and not r(y))",
        ];
        for a in &samples {
            for b in &samples {
                let (fa, fb) = (p(a), p(b));
                if alpha_canonical(&fa) == alpha_canonical(&fb) {
                    assert_eq!(alpha_hash(&fa), alpha_hash(&fb));
                }
            }
        }
    }
}
