//! Restricted quantifications and restricted variables (Definitions 2 & 3).
//!
//! These are the paper's syntactic safety classes: a query is evaluable
//! under negation-as-failure only if every quantifier comes with a range
//! and every free variable is range-restricted. Queries outside the class
//! (like the paper's rejected `∃x₁x₂ (r(x₁) ∨ s(x₂)) ∧ ¬p(x₁,x₂)`) are
//! reported with a typed error.

use crate::range::{is_range_for, split_producer_filter};
use crate::{Formula, Var};
use std::collections::BTreeSet;

/// Why a formula fails to be restricted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestrictionError {
    /// An existential block whose body provides no range covering the
    /// quantified variables.
    UnrestrictedExistential {
        /// The quantified variables.
        vars: Vec<Var>,
        /// Rendering of the offending subformula.
        subformula: String,
    },
    /// A universal block not of the form `∀x̄ ¬R` or `∀x̄ R ⇒ F`.
    UnrestrictedUniversal {
        /// The quantified variables.
        vars: Vec<Var>,
        /// Rendering of the offending subformula.
        subformula: String,
    },
    /// A formula expected to be closed has free variables.
    NotClosed {
        /// The free variables found.
        free: Vec<Var>,
    },
    /// The disjuncts of an open query restrict different variable sets
    /// (Definition 3 requires both sides of `∨` to restrict the same set).
    MismatchedDisjuncts {
        /// Variables of the left disjunct.
        left: Vec<Var>,
        /// Variables of the right disjunct.
        right: Vec<Var>,
    },
}

impl std::fmt::Display for RestrictionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestrictionError::UnrestrictedExistential { vars, subformula } => write!(
                f,
                "existential quantification of {} has no covering range in `{subformula}`",
                render_vars(vars)
            ),
            RestrictionError::UnrestrictedUniversal { vars, subformula } => write!(
                f,
                "universal quantification of {} is not of the form ∀x̄ ¬R or ∀x̄ R ⇒ F in `{subformula}`",
                render_vars(vars)
            ),
            RestrictionError::NotClosed { free } => {
                write!(f, "formula is not closed; free variables: {}", render_vars(free))
            }
            RestrictionError::MismatchedDisjuncts { left, right } => write!(
                f,
                "open disjunction restricts different variables: {} vs {}",
                render_vars(left),
                render_vars(right)
            ),
        }
    }
}

impl std::error::Error for RestrictionError {}

fn render_vars(vs: &[Var]) -> String {
    let names: Vec<&str> = vs.iter().map(Var::name).collect();
    names.join(", ")
}

/// Check Definition 2: `f` is a *closed formula with restricted
/// quantifications*.
pub fn check_restricted_closed(f: &Formula) -> Result<(), RestrictionError> {
    let free = f.free_vars();
    if !free.is_empty() {
        return Err(RestrictionError::NotClosed {
            free: free.into_iter().collect(),
        });
    }
    check_quantifications(f, &BTreeSet::new())
}

/// Check Definition 3: `f` is an *open formula with restricted variables*.
/// Returns the restricted variable set (the free variables).
pub fn check_restricted_open(f: &Formula) -> Result<BTreeSet<Var>, RestrictionError> {
    // Definition 3 case 2: a disjunction of open formulas restricting the
    // same variables.
    if let Formula::Or(a, b) = f {
        if !a.free_vars().is_empty() || !b.free_vars().is_empty() {
            let lv = check_restricted_open(a)?;
            let rv = check_restricted_open(b)?;
            if lv != rv {
                return Err(RestrictionError::MismatchedDisjuncts {
                    left: lv.into_iter().collect(),
                    right: rv.into_iter().collect(),
                });
            }
            return Ok(lv);
        }
    }
    let free = f.free_vars();
    if free.is_empty() {
        check_restricted_closed(f)?;
        return Ok(free);
    }
    // Definition 3 case 1: the existential closure must be a closed formula
    // with restricted quantifications.
    let closure = Formula::exists(free.iter().cloned().collect(), f.clone());
    check_restricted_closed(&closure)?;
    Ok(free)
}

/// Walk the formula checking every quantifier block against the allowed
/// forms of Definition 2, with `outer` the variables bound by enclosing
/// quantifiers (they act as constants for range recognition).
fn check_quantifications(f: &Formula, outer: &BTreeSet<Var>) -> Result<(), RestrictionError> {
    match f {
        Formula::Exists(vars, body) => {
            let target: BTreeSet<Var> = vars.iter().cloned().collect();
            // Allowed forms: ∃x̄ R[x̄]  or  ∃x̄ R[x̄] ∧ F.
            if split_producer_filter(body, &target, outer).is_none() {
                return Err(RestrictionError::UnrestrictedExistential {
                    vars: vars.clone(),
                    subformula: f.to_string(),
                });
            }
            let mut inner = outer.clone();
            inner.extend(vars.iter().cloned());
            check_quantifications(body, &inner)
        }
        Formula::Forall(vars, body) => {
            let target: BTreeSet<Var> = vars.iter().cloned().collect();
            let ok = match &**body {
                // ∀x̄ ¬R[x̄]
                Formula::Not(r) => is_range_for(r, &target, outer),
                // ∀x̄ R[x̄] ⇒ F — the range side may itself carry filters
                // (Definition 1 condition 4), e.g. ∀y (lect(y) ∧ hard(y)) ⇒ F.
                Formula::Implies(r, _) => split_producer_filter(r, &target, outer).is_some(),
                _ => false,
            };
            if !ok {
                return Err(RestrictionError::UnrestrictedUniversal {
                    vars: vars.clone(),
                    subformula: f.to_string(),
                });
            }
            let mut inner = outer.clone();
            inner.extend(vars.iter().cloned());
            check_quantifications(body, &inner)
        }
        _ => {
            for c in f.children() {
                check_quantifications(c, outer)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn at(r: &str, args: &[&str]) -> Formula {
        Formula::atom(r, args.iter().map(Term::var).collect())
    }

    #[test]
    fn paper_rejected_query_f1() {
        // F1: ∃x1x2 [r(x1) ∨ s(x2)] ∧ ¬p(x1,x2) — rejected by Definition 2
        let f = Formula::exists(
            vec![Var::new("x1"), Var::new("x2")],
            Formula::and(
                Formula::or(at("r", &["x1"]), at("s", &["x2"])),
                Formula::not(at("p", &["x1", "x2"])),
            ),
        );
        assert!(matches!(
            check_restricted_closed(&f),
            Err(RestrictionError::UnrestrictedExistential { .. })
        ));
    }

    #[test]
    fn simple_closed_existential_ok() {
        let f = Formula::exists1(
            "x",
            Formula::and(at("p", &["x"]), Formula::not(at("q", &["x"]))),
        );
        assert!(check_restricted_closed(&f).is_ok());
    }

    #[test]
    fn closed_universal_forms() {
        // ∀x p(x) ⇒ q(x): ok
        let f = Formula::forall1("x", Formula::implies(at("p", &["x"]), at("q", &["x"])));
        assert!(check_restricted_closed(&f).is_ok());
        // ∀x ¬p(x): ok
        let g = Formula::forall1("x", Formula::not(at("p", &["x"])));
        assert!(check_restricted_closed(&g).is_ok());
        // ∀x q(x): not an allowed form
        let h = Formula::forall1("x", at("q", &["x"]));
        assert!(matches!(
            check_restricted_closed(&h),
            Err(RestrictionError::UnrestrictedUniversal { .. })
        ));
    }

    #[test]
    fn open_formula_returns_free_vars() {
        // member(x,z) ∧ ¬skill(x,db)
        let f = Formula::and(
            at("member", &["x", "z"]),
            Formula::not(Formula::atom(
                "skill",
                vec![Term::var("x"), Term::constant("db")],
            )),
        );
        let vars = check_restricted_open(&f).unwrap();
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn open_disjunction_must_match_vars() {
        let f = Formula::or(at("p", &["x"]), at("q", &["y"]));
        assert!(matches!(
            check_restricted_open(&f),
            Err(RestrictionError::MismatchedDisjuncts { .. })
        ));
        let g = Formula::or(at("p", &["x"]), at("q", &["x"]));
        assert!(check_restricted_open(&g).is_ok());
    }

    #[test]
    fn not_closed_is_reported() {
        let f = at("p", &["x"]);
        assert!(matches!(
            check_restricted_closed(&f),
            Err(RestrictionError::NotClosed { .. })
        ));
    }

    #[test]
    fn nested_quantifiers_with_outer_ranges() {
        // ∃y R(x,y) ∧ ∃z (T(y,z) ∧ ¬G(x,y,z)) closed over x too:
        // Proposition 4 case 2b shape.
        let f = Formula::exists1(
            "x",
            Formula::and(
                at("dom", &["x"]),
                Formula::exists1(
                    "y",
                    Formula::and(
                        at("r", &["x", "y"]),
                        Formula::exists1(
                            "z",
                            Formula::and(
                                at("t", &["y", "z"]),
                                Formula::not(at("g", &["x", "y", "z"])),
                            ),
                        ),
                    ),
                ),
            ),
        );
        assert!(check_restricted_closed(&f).is_ok());
    }

    #[test]
    fn universal_with_filtered_range() {
        // ∀y (lecture(y) ∧ hard(y)) ⇒ attends(x,y), under ∃x student(x) ∧ …
        let f = Formula::exists1(
            "x",
            Formula::and(
                at("student", &["x"]),
                Formula::forall1(
                    "y",
                    Formula::implies(
                        Formula::and(at("lecture", &["y"]), at("hard", &["y"])),
                        at("attends", &["x", "y"]),
                    ),
                ),
            ),
        );
        assert!(check_restricted_closed(&f).is_ok());
    }
}
