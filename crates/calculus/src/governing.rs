//! The governing relationship between quantified variables (§1).
//!
//! "Intuitively, x governs y iff moving the quantification of y out of the
//! scope of x could compromise logical equivalence." The miniscope rules 10
//! and 11 consult this relationship in their side condition (†).
//!
//! Definition (§1): a quantified variable x *directly governs* y iff
//! 1. y is quantified within the scope of x,
//! 2. the quantification of y follows immediately that of x,
//! 3. the scope of x contains an atom in which both x and y — or a
//!    variable governed by y — occur,
//! 4. x and y have distinct quantifiers.
//!
//! *Governs* is the transitive closure of *directly governs*. Condition 3
//! makes the definition recursive; we compute it by fixpoint iteration.

use crate::{Formula, Var};
use std::collections::{BTreeMap, BTreeSet};

/// One quantifier block occurrence in the formula tree.
#[derive(Debug)]
struct Block {
    kind: Kind,
    vars: Vec<Var>,
    parent: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Exists,
    Forall,
}

/// An atom occurrence: its variables and the innermost enclosing block.
#[derive(Debug)]
struct AtomOcc {
    vars: BTreeSet<Var>,
    /// Innermost enclosing block id, if any (chain to root via parents).
    block: Option<usize>,
}

/// The governing relationship of a formula.
///
/// Assumes bound variables are standardized apart (each variable bound at
/// most once). [`Formula::standardize_apart`] establishes the invariant; if
/// it is violated, the first binding occurrence of a name wins.
#[derive(Debug, Clone)]
pub struct Governing {
    pairs: BTreeSet<(Var, Var)>,
}

impl Governing {
    /// Compute the governing relationship of `formula`.
    pub fn of(formula: &Formula) -> Governing {
        let mut blocks = Vec::new();
        let mut atoms = Vec::new();
        collect(formula, None, &mut blocks, &mut atoms);

        // Map each variable to its block (first binding wins).
        let mut var_block: BTreeMap<Var, usize> = BTreeMap::new();
        for (i, b) in blocks.iter().enumerate() {
            for v in &b.vars {
                var_block.entry(v.clone()).or_insert(i);
            }
        }

        // Candidate pairs: y's block is an immediate quantifier child of
        // x's block (conditions 1, 2) with distinct quantifiers (4).
        let mut candidates: Vec<(Var, Var, usize)> = Vec::new(); // (x, y, x's block)
        for (yi, yb) in blocks.iter().enumerate() {
            let Some(xi) = yb.parent else { continue };
            if blocks[xi].kind == blocks[yi].kind {
                continue;
            }
            for x in &blocks[xi].vars {
                for y in &yb.vars {
                    candidates.push((x.clone(), y.clone(), xi));
                }
            }
        }

        // Atoms within the scope of each block: atom.block chain contains it.
        let in_scope = |atom: &AtomOcc, block: usize| -> bool {
            let mut b = atom.block;
            while let Some(i) = b {
                if i == block {
                    return true;
                }
                b = blocks[i].parent;
            }
            false
        };

        // Fixpoint on condition 3 + transitive closure.
        let mut direct: BTreeSet<(Var, Var)> = BTreeSet::new();
        let mut governs: BTreeSet<(Var, Var)> = BTreeSet::new();
        loop {
            let mut changed = false;
            for (x, y, bx) in &candidates {
                if direct.contains(&(x.clone(), y.clone())) {
                    continue;
                }
                let cond3 = atoms.iter().any(|a| {
                    in_scope(a, *bx)
                        && a.vars.contains(x)
                        && (a.vars.contains(y)
                            || a.vars
                                .iter()
                                .any(|z| governs.contains(&(y.clone(), z.clone()))))
                });
                if cond3 {
                    direct.insert((x.clone(), y.clone()));
                    changed = true;
                }
            }
            let closed = transitive_closure(&direct);
            if closed != governs {
                governs = closed;
                changed = true;
            }
            if !changed {
                break;
            }
        }
        Governing { pairs: governs }
    }

    /// True iff `x` governs `y`.
    pub fn governs(&self, x: &Var, y: &Var) -> bool {
        self.pairs.contains(&(x.clone(), y.clone()))
    }

    /// All variables governed by at least one of `xs`.
    pub fn governed_by_any<'a>(&self, xs: impl IntoIterator<Item = &'a Var>) -> BTreeSet<Var> {
        let xs: BTreeSet<&Var> = xs.into_iter().collect();
        self.pairs
            .iter()
            .filter(|(x, _)| xs.contains(x))
            .map(|(_, y)| y.clone())
            .collect()
    }

    /// All (governor, governed) pairs.
    pub fn pairs(&self) -> impl Iterator<Item = &(Var, Var)> {
        self.pairs.iter()
    }
}

fn transitive_closure(direct: &BTreeSet<(Var, Var)>) -> BTreeSet<(Var, Var)> {
    let mut closed = direct.clone();
    loop {
        let mut additions = Vec::new();
        for (x, z) in &closed {
            for (z2, y) in &closed {
                if z == z2 && !closed.contains(&(x.clone(), y.clone())) {
                    additions.push((x.clone(), y.clone()));
                }
            }
        }
        if additions.is_empty() {
            return closed;
        }
        closed.extend(additions);
    }
}

fn collect(
    f: &Formula,
    enclosing: Option<usize>,
    blocks: &mut Vec<Block>,
    atoms: &mut Vec<AtomOcc>,
) {
    match f {
        Formula::Atom(a) => atoms.push(AtomOcc {
            vars: a.vars(),
            block: enclosing,
        }),
        Formula::Compare(c) => atoms.push(AtomOcc {
            vars: c.vars(),
            block: enclosing,
        }),
        Formula::Exists(vs, body) | Formula::Forall(vs, body) => {
            let kind = if matches!(f, Formula::Exists(..)) {
                Kind::Exists
            } else {
                Kind::Forall
            };
            blocks.push(Block {
                kind,
                vars: vs.clone(),
                parent: enclosing,
            });
            let id = blocks.len() - 1;
            collect(body, Some(id), blocks, atoms);
        }
        _ => {
            for c in f.children() {
                collect(c, enclosing, blocks, atoms);
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn v(s: &str) -> Var {
        Var::new(s)
    }
    fn at(r: &str, vs: &[&str]) -> Formula {
        Formula::atom(r, vs.iter().map(Term::var).collect())
    }
    fn at_c(r: &str, vs: &[&str], c: &str) -> Formula {
        let mut terms: Vec<Term> = vs.iter().map(Term::var).collect();
        terms.push(Term::constant(c));
        Formula::atom(r, terms)
    }

    /// The paper's §1 example:
    /// ∃x { student(x) ∧ [∀y lecture(y,db) ⇒ attends(x,y)]
    ///              ∧ [∀z1 student(z1) ⇒ ∃z2 attends(z1,z2)] }
    /// "x governs y but none of the zi's".
    fn paper_example() -> Formula {
        Formula::exists1(
            "x",
            Formula::and(
                Formula::and(
                    at("student", &["x"]),
                    Formula::forall1(
                        "y",
                        Formula::implies(at_c("lecture", &["y"], "db"), at("attends", &["x", "y"])),
                    ),
                ),
                Formula::forall1(
                    "z1",
                    Formula::implies(
                        at("student", &["z1"]),
                        Formula::exists1("z2", at("attends", &["z1", "z2"])),
                    ),
                ),
            ),
        )
    }

    #[test]
    fn paper_example_governs() {
        let g = Governing::of(&paper_example());
        assert!(g.governs(&v("x"), &v("y")));
        assert!(!g.governs(&v("x"), &v("z1")));
        assert!(!g.governs(&v("x"), &v("z2")));
        // z1 governs z2 via attends(z1,z2)
        assert!(g.governs(&v("z1"), &v("z2")));
    }

    #[test]
    fn same_kind_blocks_do_not_govern() {
        // ∃x p(x) ∧ ∃y q(x,y): nested existentials — condition 4 fails
        let f = Formula::exists1(
            "x",
            Formula::and(at("p", &["x"]), Formula::exists1("y", at("q", &["x", "y"]))),
        );
        let g = Governing::of(&f);
        assert!(!g.governs(&v("x"), &v("y")));
    }

    #[test]
    fn no_shared_atom_no_governing() {
        // ∃x p(x) ∧ ∀y q(y): no atom mentions both
        let f = Formula::exists1(
            "x",
            Formula::and(at("p", &["x"]), Formula::forall1("y", at("q", &["y"]))),
        );
        let g = Governing::of(&f);
        assert!(!g.governs(&v("x"), &v("y")));
    }

    #[test]
    fn f5_example_x_governs_y() {
        // F5: ∃x p(x) ∧ [∀y ¬q(y) ∨ r(x,y)] — x governs y (r(x,y))
        let f = Formula::exists1(
            "x",
            Formula::and(
                at("p", &["x"]),
                Formula::forall1(
                    "y",
                    Formula::or(Formula::not(at("q", &["y"])), at("r", &["x", "y"])),
                ),
            ),
        );
        let g = Governing::of(&f);
        assert!(g.governs(&v("x"), &v("y")));
    }

    #[test]
    fn indirect_governing_through_condition3() {
        // ∃x r(x) ∧ ∀y (s(y) ⇒ ∃z (t(y,z) ∧ u(x,z)))
        // y governs z? y∀ parent of z∃, distinct kinds, atom t(y,z) → yes.
        // x governs y? atom with x and (y or var governed by y i.e. z):
        // u(x,z) qualifies → yes, via the recursive part of condition 3.
        let f = Formula::exists1(
            "x",
            Formula::and(
                at("r", &["x"]),
                Formula::forall1(
                    "y",
                    Formula::implies(
                        at("s", &["y"]),
                        Formula::exists1(
                            "z",
                            Formula::and(at("t", &["y", "z"]), at("u", &["x", "z"])),
                        ),
                    ),
                ),
            ),
        );
        let g = Governing::of(&f);
        assert!(g.governs(&v("y"), &v("z")));
        assert!(g.governs(&v("x"), &v("y")));
    }

    #[test]
    fn non_immediate_quantification_not_direct_but_transitive() {
        let g = Governing::of(&paper_example());
        // z2 is not an immediate child of x's block (z1 intervenes), and
        // x does not govern z1, so x must not govern z2 transitively either.
        assert!(!g.governs(&v("x"), &v("z2")));
        let governed = g.governed_by_any(
            [&v("x"), &v("z1")]
                .into_iter()
                .cloned()
                .collect::<Vec<_>>()
                .iter(),
        );
        assert!(governed.contains(&v("y")));
        assert!(governed.contains(&v("z2")));
    }
}
