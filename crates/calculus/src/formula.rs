//! Formulas of the domain relational calculus.

use crate::{Atom, Comparison, Var};
use std::fmt;

/// A formula of the (untyped) domain relational calculus of the paper.
///
/// Conventions, following §1 "Definitions and Notations":
///
/// * Conjunction and disjunction are binary; `∃x₁…xₙ` / `∀x₁…xₙ` are
///   quantifier *blocks* over a set of variables whose internal order is
///   irrelevant.
/// * The connective `⇒` is meant to be "used only for expressing ranges"
///   (the range of a universal quantifier). It is accepted anywhere in the
///   input but eliminated everywhere else during normalization, as the
///   paper prescribes: `F₁ ⇒ F₂` becomes `¬F₁ ∨ F₂` and `F₁ ⇔ F₂` becomes
///   `(¬F₁ ∨ F₂) ∧ (¬F₂ ∨ F₁)`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Formula {
    /// Relational atom `R(t₁,…,tₙ)`.
    Atom(Atom),
    /// Built-in comparison `t₁ op t₂`.
    Compare(Comparison),
    /// Negation `¬F`.
    Not(Box<Formula>),
    /// Conjunction `F₁ ∧ F₂`.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction `F₁ ∨ F₂`.
    Or(Box<Formula>, Box<Formula>),
    /// Implication `F₁ ⇒ F₂` (range notation for universal quantification).
    Implies(Box<Formula>, Box<Formula>),
    /// Equivalence `F₁ ⇔ F₂` (input sugar, eliminated by normalization).
    Iff(Box<Formula>, Box<Formula>),
    /// Existential block `∃x₁…xₙ F`. The variable list is non-empty.
    Exists(Vec<Var>, Box<Formula>),
    /// Universal block `∀x₁…xₙ F`. The variable list is non-empty.
    Forall(Vec<Var>, Box<Formula>),
}

impl Formula {
    /// Atom constructor.
    pub fn atom(relation: impl Into<String>, terms: Vec<crate::Term>) -> Formula {
        Formula::Atom(Atom::new(relation, terms))
    }

    /// Comparison constructor.
    pub fn compare(left: crate::Term, op: crate::CompareOp, right: crate::Term) -> Formula {
        Formula::Compare(Comparison::new(left, op, right))
    }

    /// `¬F`.
    #[allow(clippy::should_implement_trait)] // constructor, not an operator impl
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `F₁ ∧ F₂`.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Left-associated conjunction of one or more formulas.
    pub fn and_all(fs: Vec<Formula>) -> Formula {
        let mut it = fs.into_iter();
        let Some(first) = it.next() else {
            unreachable!("and_all of no formulas")
        };
        it.fold(first, Formula::and)
    }

    /// `F₁ ∨ F₂`.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// Left-associated disjunction of one or more formulas.
    pub fn or_all(fs: Vec<Formula>) -> Formula {
        let mut it = fs.into_iter();
        let Some(first) = it.next() else {
            unreachable!("or_all of no formulas")
        };
        it.fold(first, Formula::or)
    }

    /// `F₁ ⇒ F₂`.
    pub fn implies(a: Formula, b: Formula) -> Formula {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// `F₁ ⇔ F₂`.
    pub fn iff(a: Formula, b: Formula) -> Formula {
        Formula::Iff(Box::new(a), Box::new(b))
    }

    /// `∃x₁…xₙ F`. Panics if `vars` is empty (a zero-variable quantifier is
    /// meaningless; Rule 6 removes them during rewriting instead).
    pub fn exists(vars: Vec<Var>, f: Formula) -> Formula {
        assert!(!vars.is_empty(), "empty existential block");
        Formula::Exists(vars, Box::new(f))
    }

    /// Shorthand: `∃x F` with a single variable by name.
    pub fn exists1(var: impl AsRef<str>, f: Formula) -> Formula {
        Formula::exists(vec![Var::new(var)], f)
    }

    /// `∀x₁…xₙ F`. Panics if `vars` is empty.
    pub fn forall(vars: Vec<Var>, f: Formula) -> Formula {
        assert!(!vars.is_empty(), "empty universal block");
        Formula::Forall(vars, Box::new(f))
    }

    /// Shorthand: `∀x F` with a single variable by name.
    pub fn forall1(var: impl AsRef<str>, f: Formula) -> Formula {
        Formula::forall(vec![Var::new(var)], f)
    }

    /// Immediate subformulas.
    pub fn children(&self) -> Vec<&Formula> {
        match self {
            Formula::Atom(_) | Formula::Compare(_) => vec![],
            Formula::Not(f) | Formula::Exists(_, f) | Formula::Forall(_, f) => vec![f],
            Formula::And(a, b)
            | Formula::Or(a, b)
            | Formula::Implies(a, b)
            | Formula::Iff(a, b) => vec![a, b],
        }
    }

    /// Total number of nodes (connectives + leaves) — a size measure used
    /// by the rewriting engine's progress accounting.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Nesting depth: 1 for a leaf, 1 + the deepest child otherwise.
    /// Computed with an explicit stack so that programmatically built,
    /// arbitrarily deep formulas cannot overflow the call stack — the
    /// resource governor checks this value against
    /// `QueryLimits::max_formula_depth`.
    pub fn depth(&self) -> usize {
        let mut max = 0usize;
        let mut stack: Vec<(&Formula, usize)> = vec![(self, 1)];
        while let Some((f, d)) = stack.pop() {
            max = max.max(d);
            for c in f.children() {
                stack.push((c, d + 1));
            }
        }
        max
    }

    /// Number of quantifier blocks (∃ or ∀).
    pub fn quantifier_count(&self) -> usize {
        let here = matches!(self, Formula::Exists(..) | Formula::Forall(..)) as usize;
        here + self
            .children()
            .iter()
            .map(|c| c.quantifier_count())
            .sum::<usize>()
    }

    /// Number of universal quantifier blocks.
    pub fn universal_count(&self) -> usize {
        let here = matches!(self, Formula::Forall(..)) as usize;
        here + self
            .children()
            .iter()
            .map(|c| c.universal_count())
            .sum::<usize>()
    }

    /// True iff the formula contains no quantifiers.
    pub fn is_quantifier_free(&self) -> bool {
        self.quantifier_count() == 0
    }

    /// Apply `f` to every subformula (preorder), short-circuiting when `f`
    /// returns `true`. Returns whether any call returned `true`.
    pub fn any_subformula(&self, f: &mut impl FnMut(&Formula) -> bool) -> bool {
        if f(self) {
            return true;
        }
        self.children().iter().any(|c| c.any_subformula(f))
    }

    /// All atoms of the formula, preorder.
    pub fn atoms(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            Formula::Atom(a) => out.push(a),
            Formula::Compare(_) => {}
            _ => {
                for c in self.children() {
                    c.collect_atoms(out);
                }
            }
        }
    }

    /// Names of all relations mentioned by the formula, deduplicated, in
    /// first-occurrence order.
    pub fn relation_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::new();
        for a in self.atoms() {
            if !names.contains(&a.relation.as_str()) {
                names.push(&a.relation);
            }
        }
        names
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::Term;

    fn p(v: &str) -> Formula {
        Formula::atom("p", vec![Term::var(v)])
    }

    #[test]
    fn size_counts_nodes() {
        let f = Formula::exists1("x", Formula::and(p("x"), Formula::not(p("x"))));
        // exists + and + p + not + p
        assert_eq!(f.size(), 5);
    }

    #[test]
    fn quantifier_counting() {
        let f = Formula::exists1(
            "x",
            Formula::and(
                p("x"),
                Formula::forall1("y", Formula::implies(p("y"), p("y"))),
            ),
        );
        assert_eq!(f.quantifier_count(), 2);
        assert_eq!(f.universal_count(), 1);
        assert!(!f.is_quantifier_free());
        assert!(p("x").is_quantifier_free());
    }

    #[test]
    fn and_all_or_all_fold_left() {
        let f = Formula::and_all(vec![p("x"), p("y"), p("z")]);
        match &f {
            Formula::And(a, _) => assert!(matches!(**a, Formula::And(..))),
            _ => panic!("expected And"),
        }
        let g = Formula::or_all(vec![p("x")]);
        assert_eq!(g, p("x"));
    }

    #[test]
    fn atoms_and_relations() {
        let f = Formula::and(
            Formula::atom("q", vec![Term::var("x")]),
            Formula::or(p("x"), Formula::atom("q", vec![Term::var("y")])),
        );
        assert_eq!(f.atoms().len(), 3);
        assert_eq!(f.relation_names(), vec!["q", "p"]);
    }

    #[test]
    #[should_panic(expected = "empty existential block")]
    fn empty_quantifier_block_panics() {
        Formula::exists(vec![], p("x"));
    }

    #[test]
    fn any_subformula_short_circuits() {
        let f = Formula::and(p("x"), p("y"));
        let mut calls = 0;
        let found = f.any_subformula(&mut |g| {
            calls += 1;
            matches!(g, Formula::And(..))
        });
        assert!(found);
        assert_eq!(calls, 1);
    }
}
