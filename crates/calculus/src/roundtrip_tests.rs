//! Printer/parser round-trip property tests: `parse(f.to_string())` is
//! alpha-equivalent (indeed equal, since printing preserves names) to `f`
//! for arbitrarily generated formulas.

#![cfg(test)]

use crate::{parse, CompareOp, Formula, Term};
use proptest::prelude::*;

fn arb_var() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("x".to_string()),
        Just("y".to_string()),
        Just("z1".to_string()),
        Just("long_name".to_string()),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_var().prop_map(Term::var),
        any::<i64>().prop_map(Term::constant),
        // no spaces: the whitespace test pads token boundaries only
        "[a-z][a-z0-9_-]{0,6}".prop_map(Term::constant),
    ]
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    (
        prop_oneof![Just("p"), Just("q"), Just("cs-lecture"), Just("r_2")],
        prop::collection::vec(arb_term(), 0..4),
    )
        .prop_map(|(name, terms)| Formula::atom(name, terms))
}

fn arb_compare() -> impl Strategy<Value = Formula> {
    (
        arb_term(),
        prop_oneof![
            Just(CompareOp::Eq),
            Just(CompareOp::Ne),
            Just(CompareOp::Lt),
            Just(CompareOp::Le),
            Just(CompareOp::Gt),
            Just(CompareOp::Ge),
        ],
        arb_term(),
    )
        .prop_map(|(l, op, r)| Formula::compare(l, op, r))
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    let leaf = prop_oneof![arb_atom(), arb_compare()];
    leaf.prop_recursive(5, 48, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::or(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::implies(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::iff(a, b)),
            inner.clone().prop_map(Formula::not),
            (arb_var(), inner.clone()).prop_map(|(v, f)| Formula::exists1(v, f)),
            (arb_var(), inner.clone()).prop_map(|(v, f)| Formula::forall1(v, f)),
            (arb_var(), arb_var(), inner).prop_filter_map("distinct block vars", |(a, b, f)| {
                if a == b {
                    None
                } else {
                    Some(Formula::exists(
                        vec![a.as_str().into(), b.as_str().into()],
                        f,
                    ))
                }
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing then parsing reproduces the formula exactly.
    #[test]
    fn print_parse_round_trip(f in arb_formula()) {
        let text = f.to_string();
        let parsed = parse(&text)
            .unwrap_or_else(|e| panic!("reparse failed on `{text}`: {e}"));
        prop_assert_eq!(&parsed, &f, "round trip through `{}`", text);
    }

    /// Parsing is insensitive to surrounding and doubled whitespace
    /// (inserted only at existing token boundaries, never inside tokens).
    #[test]
    fn parse_ignores_whitespace(f in arb_formula()) {
        let text = f.to_string();
        let spaced = format!("  {}  ", text.replace(' ', "   "));
        let parsed = parse(&spaced).unwrap();
        prop_assert_eq!(parsed, f);
    }
}
