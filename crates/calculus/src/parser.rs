//! A small text syntax for calculus queries.
//!
//! Grammar (ASCII forms on the left, the paper's symbols also accepted):
//!
//! ```text
//! formula  := iff
//! iff      := imp ( ("<->" | "⇔") imp )*
//! imp      := or ( ("->" | "⇒") imp )?            -- right associative
//! or       := and ( ("|" | "∨") and )*
//! and      := unary ( ("&" | "∧") unary )*
//! unary    := ("!" | "¬" | "not") unary
//!           | ("exists" | "∃") vars ("." | ":") formula    -- maximal scope
//!           | ("forall" | "∀") vars ("." | ":") formula
//!           | primary
//! primary  := "(" formula ")" | atom | comparison
//! atom     := ident "(" term ("," term)* ")"
//! compare  := term ("=" | "!=" | "≠" | "<" | "<=" | ">" | ">=") term
//! term     := ident              -- a variable
//!           | "string literal"   -- a constant
//!           | integer            -- a constant
//! vars     := ident ("," ident)*
//! ```
//!
//! Unquoted identifiers in term position are always *variables*; constants
//! must be quoted strings or integers, so `enrolled(x, "cs")` is the
//! paper's `enrolled(x, cs)`. The prefix `_v` is reserved for generated
//! variables and rejected.

use crate::{CompareOp, Formula, Term, Var};
use std::fmt;

/// A parse error with byte position and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub position: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Default cap on formula nesting depth for [`parse`]. Deep enough for
/// any sane query, shallow enough that the recursive-descent parser can
/// never overflow its stack — each nesting level costs several grammar
/// frames, and the cap must hold even on 2 MiB test-thread stacks in
/// debug builds. A pathological input like a 10k-deep `not(not(…))`
/// chain returns a [`ParseError`] instead.
pub const DEFAULT_MAX_FORMULA_DEPTH: usize = 200;

/// Parse a formula from text.
///
/// ```
/// use gq_calculus::parse;
///
/// let f = parse("exists x. student(x) & !enrolled(x, \"cs\")").unwrap();
/// assert!(f.is_closed());
/// assert_eq!(f.to_string(), "∃x (student(x) ∧ ¬enrolled(x,\"cs\"))");
///
/// // the paper's symbols work too
/// let g = parse("∀y lecture(y,\"db\") ⇒ attends(x,y)").unwrap();
/// assert_eq!(g.free_vars().len(), 1);
/// ```
pub fn parse(input: &str) -> Result<Formula, ParseError> {
    parse_with_max_depth(input, DEFAULT_MAX_FORMULA_DEPTH)
}

/// One recursive view definition from a `with recursive` program: the
/// view's name, its declared parameter order (the column order of the
/// materialized extent), and its defining body.
#[derive(Debug, Clone, PartialEq)]
pub struct RecursiveDef {
    /// View name.
    pub name: String,
    /// Declared parameters, in declaration order.
    pub params: Vec<Var>,
    /// The defining open formula (may mention `name` itself and the other
    /// definitions of the same program).
    pub body: Formula,
}

/// A parsed program: zero or more `with recursive` view definitions plus
/// the query to evaluate against them.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Recursive view definitions, in source order.
    pub defs: Vec<RecursiveDef>,
    /// The query formula following `in`.
    pub query: Formula,
}

/// Parse a program with an optional `with recursive` prefix:
///
/// ```text
/// program := "with" "recursive" def ("," def)* "in" formula
///          | formula
/// def     := ident "(" ident ("," ident)* ")" "as" "(" formula ")"
/// ```
///
/// `with`, `recursive`, `as` and `in` are contextual keywords — they only
/// carry meaning in these positions, so relations named `with` etc. keep
/// working in plain formulas.
///
/// ```
/// use gq_calculus::parse_program;
///
/// let p = parse_program(
///     "with recursive tc(x,y) as (edge(x,y) | (exists z. edge(x,z) & tc(z,y))) in tc(a,b)",
/// )
/// .unwrap();
/// assert_eq!(p.defs.len(), 1);
/// assert_eq!(p.defs[0].name, "tc");
/// ```
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
        max_depth: DEFAULT_MAX_FORMULA_DEPTH,
    };
    // Two-token lookahead: `with` starts a program only when followed by
    // `recursive`, so a relation named `with` keeps parsing as a formula.
    let starts_program = matches!(p.peek(), Some(Tok::Ident(s)) if s == "with")
        && matches!(p.tokens.get(p.pos + 1), Some((_, Tok::Ident(s))) if s == "recursive");
    let defs = if starts_program {
        p.pos += 1; // `with`
        p.expect_keyword("recursive")?;
        let mut defs = vec![p.recursive_def()?];
        while p.eat(&Tok::Comma) {
            defs.push(p.recursive_def()?);
        }
        p.expect_keyword("in")?;
        defs
    } else {
        Vec::new()
    };
    let query = p.formula()?;
    if p.pos < p.tokens.len() {
        return Err(p.err_here("unexpected trailing input"));
    }
    Ok(Program { defs, query })
}

/// Parse with an explicit nesting-depth cap (see
/// [`DEFAULT_MAX_FORMULA_DEPTH`]). Inputs nested deeper than `max_depth`
/// levels are rejected with a [`ParseError`] at the point where the cap
/// is exceeded.
pub fn parse_with_max_depth(input: &str, max_depth: usize) -> Result<Formula, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        depth: 0,
        max_depth,
    };
    let f = p.formula()?;
    if p.pos < p.tokens.len() {
        return Err(p.err_here("unexpected trailing input"));
    }
    Ok(f)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
    Dot,
    Amp,
    Pipe,
    Bang,
    Arrow,
    DArrow,
    Exists,
    Forall,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

fn lex(input: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    // Track byte offsets for error messages.
    let mut byte = 0;
    macro_rules! push {
        ($t:expr, $n:expr) => {{
            out.push((byte, $t));
            for k in 0..$n {
                byte += bytes[i + k].len_utf8();
            }
            i += $n;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                byte += c.len_utf8();
                i += 1;
            }
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            ',' => push!(Tok::Comma, 1),
            '.' | ':' => push!(Tok::Dot, 1),
            '&' | '∧' => push!(Tok::Amp, 1),
            '|' | '∨' => push!(Tok::Pipe, 1),
            '¬' => push!(Tok::Bang, 1),
            '∃' => push!(Tok::Exists, 1),
            '∀' => push!(Tok::Forall, 1),
            '≠' => push!(Tok::Ne, 1),
            '≤' => push!(Tok::Le, 1),
            '≥' => push!(Tok::Ge, 1),
            '⇒' => push!(Tok::Arrow, 1),
            '⇔' => push!(Tok::DArrow, 1),
            '=' => push!(Tok::Eq, 1),
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::Ne, 2)
                } else {
                    push!(Tok::Bang, 1)
                }
            }
            '<' => match bytes.get(i + 1) {
                Some('-') if bytes.get(i + 2) == Some(&'>') => push!(Tok::DArrow, 3),
                Some('=') => push!(Tok::Le, 2),
                Some('>') => push!(Tok::Ne, 2),
                _ => push!(Tok::Lt, 1),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    push!(Tok::Ge, 2)
                } else {
                    push!(Tok::Gt, 1)
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&'>') {
                    push!(Tok::Arrow, 2)
                } else if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    let (n, len) = lex_int(&bytes[i..]);
                    push!(Tok::Int(n), len)
                } else {
                    return Err(ParseError {
                        position: byte,
                        message: "unexpected `-`".into(),
                    });
                }
            }
            '"' => {
                let mut j = i + 1;
                let mut s = String::new();
                while j < bytes.len() && bytes[j] != '"' {
                    s.push(bytes[j]);
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        position: byte,
                        message: "unterminated string literal".into(),
                    });
                }
                let len = j + 1 - i;
                push!(Tok::Str(s), len);
            }
            c if c.is_ascii_digit() => {
                let (n, len) = lex_int(&bytes[i..]);
                push!(Tok::Int(n), len)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                let mut s = String::new();
                while j < bytes.len()
                    && (bytes[j].is_alphanumeric() || bytes[j] == '_' || bytes[j] == '-')
                {
                    // A `-` only continues an identifier if followed by an
                    // alphanumeric (so `cs-lecture` lexes as one name but
                    // `p(x)->q(x)` still finds its arrow).
                    if bytes[j] == '-' && !bytes.get(j + 1).is_some_and(|c| c.is_alphanumeric()) {
                        break;
                    }
                    s.push(bytes[j]);
                    j += 1;
                }
                let len = j - i;
                let tok = match s.as_str() {
                    "exists" => Tok::Exists,
                    "forall" => Tok::Forall,
                    "not" => Tok::Bang,
                    "and" => Tok::Amp,
                    "or" => Tok::Pipe,
                    _ => Tok::Ident(s),
                };
                push!(tok, len);
            }
            _ => {
                return Err(ParseError {
                    position: byte,
                    message: format!("unexpected character `{c}`"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_int(chars: &[char]) -> (i64, usize) {
    let mut j = 0;
    let neg = chars[0] == '-';
    if neg {
        j = 1;
    }
    // Accumulate negatively: i64::MIN's magnitude overflows i64 but its
    // negation does not. Out-of-range literals saturate.
    let mut n: i64 = 0;
    while j < chars.len() && chars[j].is_ascii_digit() {
        let d = chars[j] as i64 - '0' as i64;
        n = n.saturating_mul(10).saturating_sub(d);
        j += 1;
    }
    (
        if neg {
            n
        } else {
            n.checked_neg().unwrap_or(i64::MAX)
        },
        j,
    )
}

struct Parser {
    tokens: Vec<(usize, Tok)>,
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl Parser {
    /// Guard one level of grammar recursion. Every recursion cycle in the
    /// grammar passes through [`Parser::formula`] or the `!`-chain in
    /// [`Parser::unary`], both of which call this, so the parser's stack
    /// usage is bounded by `max_depth` regardless of input.
    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(self.err_here(&format!(
                "formula nested deeper than {} levels",
                self.max_depth
            )));
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected {what}")))
        }
    }

    /// Consume `word` if the next token is exactly that identifier
    /// (contextual keyword — only meaningful where the program grammar
    /// asks for it).
    fn eat_keyword(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == word) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_keyword(word) {
            Ok(())
        } else {
            Err(self.err_here(&format!("expected `{word}`")))
        }
    }

    /// One `name(params) as (body)` recursive-view definition.
    fn recursive_def(&mut self) -> Result<RecursiveDef, ParseError> {
        let name = match self.next() {
            Some(Tok::Ident(n)) => n,
            _ => return Err(self.err_here("expected a view name")),
        };
        self.expect(Tok::LParen, "`(` opening the parameter list")?;
        let mut params = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Ident(p)) => {
                    if p.starts_with("_v") {
                        return Err(self.err_here("identifier prefix `_v` is reserved"));
                    }
                    params.push(Var::new(p));
                }
                _ => return Err(self.err_here("expected a parameter name")),
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen, "`)` closing the parameter list")?;
        self.expect_keyword("as")?;
        self.expect(Tok::LParen, "`(` opening the view body")?;
        let body = self.formula()?;
        self.expect(Tok::RParen, "`)` closing the view body")?;
        Ok(RecursiveDef { name, params, body })
    }

    fn err_here(&self, message: &str) -> ParseError {
        let position = self
            .tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(b, _)| *b)
            .unwrap_or(0);
        ParseError {
            position,
            message: message.to_string(),
        }
    }

    fn formula(&mut self) -> Result<Formula, ParseError> {
        self.enter()?;
        let result = self.formula_unguarded();
        self.leave();
        result
    }

    fn formula_unguarded(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.imp()?;
        while self.eat(&Tok::DArrow) {
            let g = self.imp()?;
            f = Formula::iff(f, g);
        }
        Ok(f)
    }

    fn imp(&mut self) -> Result<Formula, ParseError> {
        let f = self.or()?;
        if self.eat(&Tok::Arrow) {
            let g = self.imp()?;
            Ok(Formula::implies(f, g))
        } else {
            Ok(f)
        }
    }

    fn or(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.and()?;
        while self.eat(&Tok::Pipe) {
            let g = self.and()?;
            f = Formula::or(f, g);
        }
        Ok(f)
    }

    fn and(&mut self) -> Result<Formula, ParseError> {
        let mut f = self.unary()?;
        while self.eat(&Tok::Amp) {
            let g = self.unary()?;
            f = Formula::and(f, g);
        }
        Ok(f)
    }

    fn unary(&mut self) -> Result<Formula, ParseError> {
        match self.peek() {
            Some(Tok::Bang) => {
                self.pos += 1;
                self.enter()?;
                let inner = self.unary();
                self.leave();
                Ok(Formula::not(inner?))
            }
            Some(Tok::Exists) | Some(Tok::Forall) => {
                let is_exists = matches!(self.peek(), Some(Tok::Exists));
                self.pos += 1;
                let vars = self.var_list()?;
                // '.' / ':' after the variable list is optional before '('.
                let _ = self.eat(&Tok::Dot);
                let body = self.formula()?;
                Ok(if is_exists {
                    Formula::exists(vars, body)
                } else {
                    Formula::forall(vars, body)
                })
            }
            _ => self.primary(),
        }
    }

    fn var_list(&mut self) -> Result<Vec<Var>, ParseError> {
        let mut vars = Vec::new();
        #[allow(clippy::while_let_loop)] // multiple distinct exits below
        loop {
            let Some(Tok::Ident(name)) = self.peek() else {
                break;
            };
            let name = name.clone();
            if name.starts_with("_v") {
                return Err(self.err_here("identifier prefix `_v` is reserved"));
            }
            self.pos += 1;
            vars.push(Var::new(name));
            if self.eat(&Tok::Comma) {
                // An explicit comma promises another variable (or the
                // terminator, ending the list on the next iteration).
                continue;
            }
            // Space-separated continuation: another identifier continues
            // the list only if it does not start an atom (ident + `(`) —
            // that would be the quantifier body with the dot omitted.
            match self.peek() {
                Some(Tok::Ident(_))
                    if self
                        .tokens
                        .get(self.pos + 1)
                        .map(|(_, t)| t != &Tok::LParen)
                        .unwrap_or(true) =>
                {
                    continue;
                }
                _ => break,
            }
        }
        if vars.is_empty() {
            return Err(self.err_here("expected at least one quantified variable"));
        }
        Ok(vars)
    }

    fn primary(&mut self) -> Result<Formula, ParseError> {
        match self.next() {
            Some(Tok::LParen) => {
                let f = self.formula()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(f)
            }
            Some(Tok::Ident(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut terms = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            terms.push(self.term()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)` closing the atom")?;
                    Ok(Formula::atom(name, terms))
                } else {
                    // A bare identifier must be the left side of a comparison.
                    if name.starts_with("_v") {
                        return Err(self.err_here("identifier prefix `_v` is reserved"));
                    }
                    let left = Term::var(name);
                    self.comparison(left)
                }
            }
            Some(Tok::Str(s)) => {
                let left = Term::constant(s);
                self.comparison(left)
            }
            Some(Tok::Int(n)) => {
                let left = Term::constant(n);
                self.comparison(left)
            }
            _ => Err(self.err_here("expected a formula")),
        }
    }

    fn comparison(&mut self, left: Term) -> Result<Formula, ParseError> {
        let op = match self.next() {
            Some(Tok::Eq) => CompareOp::Eq,
            Some(Tok::Ne) => CompareOp::Ne,
            Some(Tok::Lt) => CompareOp::Lt,
            Some(Tok::Le) => CompareOp::Le,
            Some(Tok::Gt) => CompareOp::Gt,
            Some(Tok::Ge) => CompareOp::Ge,
            _ => return Err(self.err_here("expected a comparison operator")),
        };
        let right = self.term()?;
        Ok(Formula::compare(left, op, right))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Ident(name)) => {
                if name.starts_with("_v") {
                    return Err(self.err_here("identifier prefix `_v` is reserved"));
                }
                Ok(Term::var(name))
            }
            Some(Tok::Str(s)) => Ok(Term::constant(s)),
            Some(Tok::Int(n)) => Ok(Term::constant(n)),
            _ => Err(self.err_here("expected a term")),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_atoms_and_connectives() {
        let f = parse("p(x) & (q(x) | r(x))").unwrap();
        assert_eq!(f.to_string(), "p(x) ∧ (q(x) ∨ r(x))");
    }

    #[test]
    fn parses_quantifiers_with_maximal_scope() {
        let f = parse("exists x. p(x) & q(x)").unwrap();
        assert_eq!(f.to_string(), "∃x (p(x) ∧ q(x))");
        let g = parse("forall x,y. p(x,y) -> q(y)").unwrap();
        assert_eq!(g.to_string(), "∀x,y (p(x,y) ⇒ q(y))");
    }

    #[test]
    fn parses_unicode_symbols() {
        let f = parse("∃x (p(x) ∧ ¬q(x))").unwrap();
        assert_eq!(f.to_string(), "∃x (p(x) ∧ ¬q(x))");
        let g = parse("∀y lecture(y,\"db\") ⇒ attends(x,y)").unwrap();
        assert_eq!(g.to_string(), "∀y (lecture(y,\"db\") ⇒ attends(x,y))");
    }

    #[test]
    fn string_and_int_constants() {
        let f = parse("enrolled(x, \"cs\") & age(x, 30)").unwrap();
        assert_eq!(f.to_string(), "enrolled(x,\"cs\") ∧ age(x,30)");
    }

    #[test]
    fn comparisons() {
        let f = parse("y != \"cs\" & n >= 3").unwrap();
        assert_eq!(f.to_string(), "y ≠ \"cs\" ∧ n ≥ 3");
        let g = parse("x = y").unwrap();
        assert_eq!(g.to_string(), "x = y");
    }

    #[test]
    fn hyphenated_relation_names() {
        let f = parse("cs-lecture(y)").unwrap();
        assert_eq!(f.to_string(), "cs-lecture(y)");
        // and the arrow still lexes
        let g = parse("p(x) -> q(x)").unwrap();
        assert_eq!(g.to_string(), "p(x) ⇒ q(x)");
    }

    #[test]
    fn implication_right_associative() {
        let f = parse("p(x) -> q(x) -> r(x)").unwrap();
        // right-associative, so no parentheses are needed on the right
        assert_eq!(f.to_string(), "p(x) ⇒ q(x) ⇒ r(x)");
        assert!(matches!(&f, Formula::Implies(_, b) if matches!(**b, Formula::Implies(..))));
    }

    #[test]
    fn round_trip_paper_query_q1() {
        // §2.2 Q1
        let text = "exists x. student(x) & (forall y. cs-lecture(y) -> attends(x,y) & !enrolled(x,\"cs\"))";
        let f = parse(text).unwrap();
        assert_eq!(f.quantifier_count(), 2);
        assert!(f.is_closed());
    }

    #[test]
    fn reserved_prefix_rejected() {
        assert!(parse("p(_v1)").is_err());
        assert!(parse("exists _v0. p(_v0)").is_err());
    }

    #[test]
    fn errors_have_positions() {
        let e = parse("p(x) &").unwrap_err();
        assert!(e.position >= 5);
        assert!(parse("p(x").is_err());
        assert!(parse("p(x))").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn iff_desugars_later_not_in_parser() {
        let f = parse("p(x) <-> q(x)").unwrap();
        assert!(matches!(f, Formula::Iff(..)));
    }

    #[test]
    fn space_separated_quantifier_vars() {
        let f = parse("exists x y. q(x,y)").unwrap();
        assert_eq!(f.to_string(), "∃x,y q(x,y)");
    }

    #[test]
    fn empty_atom_argument_list() {
        let f = parse("flag()").unwrap();
        assert_eq!(f.to_string(), "flag()");
    }

    #[test]
    fn deep_not_chain_errors_instead_of_overflowing() {
        // 10k-deep not(not(…)) — must return a ParseError, not blow the
        // stack.
        let n = 10_000;
        let mut text = String::new();
        for _ in 0..n {
            text.push_str("not(");
        }
        text.push_str("p(x)");
        for _ in 0..n {
            text.push(')');
        }
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("nested deeper"), "got: {}", e.message);
    }

    #[test]
    fn deep_bang_chain_without_parens_is_guarded_too() {
        let mut text = "!".repeat(10_000);
        text.push_str("p(x)");
        let e = parse(&text).unwrap_err();
        assert!(e.message.contains("nested deeper"), "got: {}", e.message);
    }

    #[test]
    fn deep_paren_nesting_is_guarded() {
        let mut text = "(".repeat(10_000);
        text.push_str("p(x)");
        text.push_str(&")".repeat(10_000));
        assert!(parse(&text).is_err());
    }

    #[test]
    fn with_recursive_program_parses() {
        let p = parse_program(
            "with recursive tc(x,y) as (edge(x,y) | (exists z. edge(x,z) & tc(z,y))) in tc(a,b)",
        )
        .unwrap();
        assert_eq!(p.defs.len(), 1);
        assert_eq!(p.defs[0].name, "tc");
        assert_eq!(p.defs[0].params.len(), 2);
        assert_eq!(p.query.to_string(), "tc(a,b)");
        // body mentions the view itself
        assert!(p.defs[0].body.relation_names().contains(&"tc"));
    }

    #[test]
    fn with_recursive_multiple_defs() {
        let p = parse_program(
            "with recursive a(x) as (base(x) | b(x)), b(x) as (other(x) | a(x)) in a(v)",
        )
        .unwrap();
        assert_eq!(p.defs.len(), 2);
        assert_eq!(p.defs[1].name, "b");
    }

    #[test]
    fn plain_formula_is_a_program_without_defs() {
        let p = parse_program("p(x) & q(x)").unwrap();
        assert!(p.defs.is_empty());
        assert_eq!(p.query.to_string(), "p(x) ∧ q(x)");
    }

    #[test]
    fn with_as_relation_name_still_parses() {
        // `with` only acts as a keyword when followed by `recursive`.
        let p = parse_program("with(x) & q(x)").unwrap();
        assert!(p.defs.is_empty());
    }

    #[test]
    fn with_recursive_errors_have_positions() {
        assert!(parse_program("with recursive tc(x,y) as edge(x,y) in tc(a,b)").is_err());
        assert!(parse_program("with recursive tc as (edge(x,y)) in tc(a,b)").is_err());
        assert!(parse_program("with recursive tc(x,y) as (edge(x,y)) tc(a,b)").is_err());
        assert!(parse_program("with recursive tc(_v0) as (edge(_v0)) in tc(a)").is_err());
    }

    #[test]
    fn custom_depth_cap_is_respected() {
        assert!(parse_with_max_depth("not(not(p(x)))", 16).is_ok());
        assert!(parse_with_max_depth("not(not(p(x)))", 2).is_err());
        // Reasonable nesting stays well under the default cap.
        assert!(parse("exists x. (p(x) & !(q(x) | r(x)))").is_ok());
    }
}
