//! The flight recorder: an always-on, fixed-capacity ring-buffer journal
//! of structured lifecycle events.
//!
//! Where [`crate::TraceBuilder`] gives an exact, deep trace of one query
//! *when asked*, the journal is the inverse: a cheap, continuous record
//! of what *every* query (and the subsystems serving it) did, with the
//! oldest events overwritten once the ring fills. The write path is
//! designed for the serving hot path:
//!
//! * **disabled** (the default), [`Journal::record`] is a single relaxed
//!   atomic load — the event closure is never called, so no `String` is
//!   built and nothing allocates (asserted via [`Journal::appends`]);
//! * **enabled**, the event is built by the caller's closure and pushed
//!   under a short mutex hold into a pre-bounded `VecDeque`; when the
//!   ring is full the oldest event is dropped and counted in
//!   [`Journal::dropped`], so memory is O(capacity) forever.
//!
//! Events carry a monotone sequence number, nanoseconds since the journal
//! was created, a small per-thread id (assigned on first use, stable for
//! the thread's lifetime), the query id they belong to (0 = none), an
//! [`EventKind`], the pipeline phase, and a free-form detail string.
//!
//! The journal exports to Chrome `trace_event` JSON ([`Journal::
//! to_chrome_trace`]) loadable in Perfetto / `chrome://tracing`, and
//! aggregates a rolling window of recent query outcomes
//! ([`Journal::window_stats`]) for the p50/p99/hit-rate block of
//! [`crate::MetricsSnapshot`].

use crate::json::Json;
use crate::metrics::Histogram;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Default ring capacity: enough for a few thousand queries' lifecycle
/// events without holding more than a few MB.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// The kind of a journal event. Kinds are a closed enum (not strings) so
/// the record path never hashes names and filters are cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A query began (detail: rendered query / strategy).
    QueryStart,
    /// A query finished successfully (detail: answer count).
    QueryEnd,
    /// A query finished with an error (detail: the error).
    QueryError,
    /// Prepared-plan cache served a compiled plan.
    PlanCacheHit,
    /// Prepared-plan cache had to compile.
    PlanCacheMiss,
    /// Prepared-plan cache evicted entries (detail: how many).
    PlanCacheEvict,
    /// A governor budget tripped (phase + resource in detail).
    GovernorTrip,
    /// A query was cancelled (token or deadline).
    Cancelled,
    /// A parallel worker panicked and was contained.
    WorkerPanic,
    /// WAL record(s) appended (detail: how many).
    WalAppend,
    /// WAL fsync(s) issued (detail: how many).
    WalFsync,
    /// A durable mutation reached its commit point.
    WalCommit,
    /// An atomic checkpoint started.
    CheckpointBegin,
    /// An atomic checkpoint finished (detail: generation).
    CheckpointEnd,
    /// A durable database was opened and recovered.
    Recovery,
    /// A deterministic chaos injection surfaced (detail: injected fault).
    Chaos,
    /// A streaming pipeline began (detail: `pipeline <id>`).
    PipelineStart,
    /// A pipeline reached its breaker (detail: `pipeline <id> <breaker
    /// kind> tuples=<build size>`).
    PipelineBreak,
    /// A server session was admitted and opened (detail: session id +
    /// peer).
    SessionOpen,
    /// A server session closed (detail: session id + reason + frames
    /// served).
    SessionClose,
    /// The admission controller let a connection in (detail: live
    /// sessions / live bytes at admit time).
    AdmissionAdmit,
    /// The admission controller shed a connection (detail: which gate
    /// tripped + retry-after hint).
    AdmissionShed,
    /// A materialized (possibly recursive) view was defined and its
    /// initial extent computed (detail: view name + extent size).
    IvmDefine,
    /// Incremental maintenance patched a materialized extent at a
    /// mutation commit (detail: view name + applied delta sizes, or the
    /// recompute fallback reason).
    IvmApply,
    /// One semi-naive fixpoint round completed (detail: view group +
    /// round number + new tuples discovered).
    IvmRound,
}

impl EventKind {
    /// Stable lower-snake name (JSON, REPL listing).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::QueryStart => "query_start",
            EventKind::QueryEnd => "query_end",
            EventKind::QueryError => "query_error",
            EventKind::PlanCacheHit => "plan_cache_hit",
            EventKind::PlanCacheMiss => "plan_cache_miss",
            EventKind::PlanCacheEvict => "plan_cache_evict",
            EventKind::GovernorTrip => "governor_trip",
            EventKind::Cancelled => "cancelled",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::WalAppend => "wal_append",
            EventKind::WalFsync => "wal_fsync",
            EventKind::WalCommit => "wal_commit",
            EventKind::CheckpointBegin => "checkpoint_begin",
            EventKind::CheckpointEnd => "checkpoint_end",
            EventKind::Recovery => "recovery",
            EventKind::Chaos => "chaos",
            EventKind::PipelineStart => "pipeline_start",
            EventKind::PipelineBreak => "pipeline_break",
            EventKind::SessionOpen => "session_open",
            EventKind::SessionClose => "session_close",
            EventKind::AdmissionAdmit => "admission_admit",
            EventKind::AdmissionShed => "admission_shed",
            EventKind::IvmDefine => "ivm.define",
            EventKind::IvmApply => "ivm.apply",
            EventKind::IvmRound => "ivm.round",
        }
    }
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a producer supplies to [`Journal::record`]; the journal stamps
/// the sequence number, timestamp, and thread id itself.
#[derive(Debug, Clone)]
pub struct EventData {
    /// What happened.
    pub kind: EventKind,
    /// The query this event belongs to (0 = not query-scoped).
    pub query_id: u64,
    /// Pipeline phase (gq-obs span names) or subsystem name.
    pub phase: &'static str,
    /// Free-form detail (error text, counts, strategy…).
    pub detail: String,
    /// Duration in nanoseconds for completion events (`query_end`,
    /// `checkpoint_end`); 0 for instants.
    pub dur_ns: u64,
}

impl EventData {
    /// An event with empty detail and no duration.
    pub fn new(kind: EventKind, query_id: u64, phase: &'static str) -> Self {
        EventData {
            kind,
            query_id,
            phase,
            detail: String::new(),
            dur_ns: 0,
        }
    }

    /// Attach a detail string.
    pub fn detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = detail.into();
        self
    }

    /// Attach a duration (nanoseconds).
    pub fn dur_ns(mut self, ns: u64) -> Self {
        self.dur_ns = ns;
        self
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Monotone sequence number (never reused, survives wraparound).
    pub seq: u64,
    /// Nanoseconds since the journal was created.
    pub ts_ns: u64,
    /// Small per-thread id (first-use order, stable per thread).
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// The query this event belongs to (0 = not query-scoped).
    pub query_id: u64,
    /// Pipeline phase or subsystem.
    pub phase: &'static str,
    /// Free-form detail.
    pub detail: String,
    /// Duration in nanoseconds for completion events; 0 for instants.
    pub dur_ns: u64,
}

impl Event {
    /// Machine-readable rendering.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("seq", self.seq)
            .field("ts_ns", self.ts_ns)
            .field("tid", self.tid)
            .field("kind", self.kind.name())
            .field("query_id", self.query_id)
            .field("phase", self.phase)
            .field("detail", self.detail.clone())
            .field("dur_ns", self.dur_ns)
    }

    /// One-line human rendering (REPL `:events`).
    pub fn render(&self) -> String {
        let mut line = format!(
            "#{:<6} +{:<12} t{} q{:<5} {:<17} [{}]",
            self.seq,
            crate::trace::fmt_ns(self.ts_ns),
            self.tid,
            self.query_id,
            self.kind.name(),
            self.phase,
        );
        if self.dur_ns > 0 {
            line.push_str(&format!(" {}", crate::trace::fmt_ns(self.dur_ns)));
        }
        if !self.detail.is_empty() {
            line.push_str(&format!(" {}", self.detail));
        }
        line
    }
}

/// Aggregates over the last N completed queries (see
/// [`Journal::window_stats`]); surfaced through
/// [`crate::MetricsSnapshot::window`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    /// Completed queries the window covers (≤ requested N).
    pub queries: u64,
    /// Of which ended in an error.
    pub errors: u64,
    /// p50 latency over the window, nanoseconds.
    pub p50_ns: u64,
    /// p99 latency over the window, nanoseconds.
    pub p99_ns: u64,
    /// Plan-cache hits attributed to the window's queries.
    pub plan_cache_hits: u64,
    /// Plan-cache misses attributed to the window's queries.
    pub plan_cache_misses: u64,
    /// Governor budget trips (incl. cancellations) in the window.
    pub governor_trips: u64,
    /// WAL commits in the window's query-id range.
    pub wal_commits: u64,
}

impl WindowStats {
    /// Plan-cache hit rate over the window (0.0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plan_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }

    /// Machine-readable rendering.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("queries", self.queries)
            .field("errors", self.errors)
            .field("p50_ns", self.p50_ns)
            .field("p99_ns", self.p99_ns)
            .field("plan_cache_hits", self.plan_cache_hits)
            .field("plan_cache_misses", self.plan_cache_misses)
            .field("hit_rate", format!("{:.3}", self.hit_rate()))
            .field("governor_trips", self.governor_trips)
            .field("wal_commits", self.wal_commits)
    }
}

struct Ring {
    events: VecDeque<Event>,
}

/// The flight recorder. Cheaply shareable behind an `Arc`; every producer
/// (engine, governor hook, parallel executor, durable-store mirror) holds
/// a clone of that `Arc` and calls [`Journal::record`].
pub struct Journal {
    enabled: AtomicBool,
    capacity: usize,
    origin: Instant,
    seq: AtomicU64,
    query_ids: AtomicU64,
    appends: AtomicU64,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

// Small per-thread ids for the trace export: assigned in first-use order,
// process-wide (journals share the numbering — tids are about threads,
// not journals).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Span name for pipeline B/E pairs: the `pipeline <id>` prefix of the
/// event detail, so the start and its matching break share a name and
/// Perfetto pairs them into one slice.
fn pipeline_span_name(detail: &str) -> String {
    let name: Vec<&str> = detail.split_whitespace().take(2).collect();
    if name.is_empty() {
        "pipeline".to_string()
    } else {
        name.join(" ")
    }
}

impl Journal {
    /// A disabled journal bounded to `capacity` events (min 8).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(8);
        Journal {
            enabled: AtomicBool::new(false),
            capacity,
            origin: Instant::now(),
            seq: AtomicU64::new(0),
            query_ids: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
            }),
        }
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording (already-captured events stay readable).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Is the recorder on?
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocate the next query id (monotone from 1). Ids keep advancing
    /// while the journal is disabled so enabling mid-session never
    /// reuses an id.
    pub fn next_query_id(&self) -> u64 {
        self.query_ids.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record an event. When the journal is disabled this is a single
    /// relaxed load — `make` is **not** called, so the disabled hot path
    /// neither formats nor allocates.
    #[inline]
    pub fn record(&self, make: impl FnOnce() -> EventData) {
        if !self.is_enabled() {
            return;
        }
        self.push(make());
    }

    fn push(&self, data: EventData) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            ts_ns: self.origin.elapsed().as_nanos() as u64,
            tid: current_tid(),
            kind: data.kind,
            query_id: data.query_id,
            phase: data.phase,
            detail: data.detail,
            dur_ns: data.dur_ns,
        };
        self.appends.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.lock();
        if ring.events.len() >= self.capacity {
            ring.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.events.push_back(event);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Ring> {
        // The ring is never left inconsistent by a panicking writer (all
        // mutations are single push/pop calls), so a poisoned lock is
        // recoverable.
        match self.ring.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Total events ever recorded (survives wraparound). Stays 0 while
    /// disabled — the "no hot-path work" assertion hook.
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Events overwritten by wraparound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Live events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// The newest `n` events, oldest-of-the-tail first (REPL `:events n`).
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let ring = self.lock();
        let skip = ring.events.len().saturating_sub(n);
        ring.events.iter().skip(skip).cloned().collect()
    }

    /// Number of live events in the ring.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Is the ring empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every buffered event and zero the dropped counter. Sequence
    /// numbers and query ids keep advancing (they are identities, not
    /// storage).
    pub fn clear(&self) {
        let mut ring = self.lock();
        ring.events.clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Export the live events as Chrome `trace_event` JSON (the
    /// `{"traceEvents": […]}` object form), loadable in Perfetto or
    /// `chrome://tracing`.
    ///
    /// Query start/end pairs become `B`/`E` duration events so each query
    /// renders as a slice on its thread's track; everything else becomes
    /// a thread-scoped instant (`ph: "i"`). Timestamps are microseconds
    /// with nanosecond fractions, and are bumped by 1 ns where needed so
    /// they are **strictly** monotone per thread id — Perfetto rejects
    /// out-of-order events within a track.
    pub fn to_chrome_trace(&self) -> Json {
        let events = self.events();
        let mut last_ns: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut out: Vec<Json> = Vec::with_capacity(events.len());
        for e in &events {
            let slot = last_ns.entry(e.tid).or_insert(0);
            let ts_ns = if e.ts_ns > *slot { e.ts_ns } else { *slot + 1 };
            *slot = ts_ns;
            let (ph, name): (&str, String) = match e.kind {
                EventKind::QueryStart => ("B", format!("query {}", e.query_id)),
                EventKind::QueryEnd | EventKind::QueryError => {
                    ("E", format!("query {}", e.query_id))
                }
                // Pipeline start/break pairs render as nested per-pipeline
                // spans inside their query's slice.
                EventKind::PipelineStart => ("B", pipeline_span_name(&e.detail)),
                EventKind::PipelineBreak => ("E", pipeline_span_name(&e.detail)),
                _ => ("i", e.kind.name().to_string()),
            };
            let mut j = Json::obj()
                .field("name", name)
                .field("cat", e.kind.name())
                .field("ph", ph)
                .field("ts", ts_ns as f64 / 1000.0)
                .field("pid", 1u64)
                .field("tid", e.tid);
            if ph == "i" {
                j = j.field("s", "t");
            }
            j = j.field(
                "args",
                Json::obj()
                    .field("seq", e.seq)
                    .field("query_id", e.query_id)
                    .field("phase", e.phase)
                    .field("detail", e.detail.clone()),
            );
            out.push(j);
        }
        Json::obj()
            .field("traceEvents", out)
            .field("displayTimeUnit", "ns")
    }

    /// Aggregate the journal's newest events into a rolling window over
    /// the last `n` *completed* queries: latency quantiles from the
    /// `query_end`/`query_error` events, hit/trip/commit counts from the
    /// other events whose `query_id` falls in the window's id range
    /// (non-query-scoped durability events are counted when they were
    /// recorded after the window's first query started).
    pub fn window_stats(&self, n: usize) -> WindowStats {
        let events = self.events();
        let ends: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::QueryEnd | EventKind::QueryError))
            .collect();
        let ends: Vec<&Event> = ends
            .into_iter()
            .rev()
            .take(n.max(1))
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect();
        let mut stats = WindowStats::default();
        let Some(first) = ends.first() else {
            return stats;
        };
        let min_qid = ends.iter().map(|e| e.query_id).min().unwrap_or(0);
        let window_start_seq = first.seq;
        let mut hist = Histogram::new();
        for e in &ends {
            stats.queries += 1;
            if e.kind == EventKind::QueryError {
                stats.errors += 1;
            }
            hist.record(Duration::from_nanos(e.dur_ns));
        }
        stats.p50_ns = hist.quantile(0.5).as_nanos() as u64;
        stats.p99_ns = hist.quantile(0.99).as_nanos() as u64;
        for e in &events {
            let in_window = if e.query_id > 0 {
                e.query_id >= min_qid
            } else {
                e.seq >= window_start_seq
            };
            if !in_window {
                continue;
            }
            match e.kind {
                EventKind::PlanCacheHit => stats.plan_cache_hits += 1,
                EventKind::PlanCacheMiss => stats.plan_cache_misses += 1,
                EventKind::GovernorTrip | EventKind::Cancelled | EventKind::WorkerPanic => {
                    stats.governor_trips += 1
                }
                EventKind::WalCommit => stats.wal_commits += 1,
                _ => {}
            }
        }
        stats
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("appends", &self.appends())
            .field("dropped", &self.dropped())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, qid: u64) -> EventData {
        EventData::new(kind, qid, "evaluate")
    }

    #[test]
    fn disabled_journal_records_nothing_and_calls_no_closure() {
        let j = Journal::with_capacity(16);
        let mut called = false;
        j.record(|| {
            called = true;
            ev(EventKind::QueryStart, 1)
        });
        assert!(!called, "closure must not run while disabled");
        assert_eq!(j.appends(), 0);
        assert!(j.is_empty());
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let j = Journal::with_capacity(8);
        j.enable();
        for i in 0..20u64 {
            j.record(|| ev(EventKind::QueryStart, i).detail(format!("q{i}")));
        }
        assert_eq!(j.len(), 8);
        assert_eq!(j.appends(), 20);
        assert_eq!(j.dropped(), 12);
        let events = j.events();
        // Newest 8 survive, in order, with monotone seq.
        assert_eq!(events.first().map(|e| e.query_id), Some(12));
        assert_eq!(events.last().map(|e| e.query_id), Some(19));
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn tail_returns_newest_n() {
        let j = Journal::with_capacity(32);
        j.enable();
        for i in 0..10u64 {
            j.record(|| ev(EventKind::QueryStart, i));
        }
        let t = j.tail(3);
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].query_id, 7);
        assert_eq!(t[2].query_id, 9);
        assert_eq!(j.tail(100).len(), 10);
    }

    #[test]
    fn query_ids_are_monotone_even_while_disabled() {
        let j = Journal::default();
        let a = j.next_query_id();
        j.enable();
        let b = j.next_query_id();
        j.disable();
        let c = j.next_query_id();
        assert!(a < b && b < c);
    }

    #[test]
    fn clear_resets_ring_not_identities() {
        let j = Journal::with_capacity(8);
        j.enable();
        for i in 0..12u64 {
            j.record(|| ev(EventKind::QueryStart, i));
        }
        let seq_before = j.events().last().map(|e| e.seq).unwrap_or(0);
        j.clear();
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 0);
        j.record(|| ev(EventKind::QueryStart, 99));
        assert!(j.events()[0].seq > seq_before, "seq keeps advancing");
    }

    #[test]
    fn chrome_trace_shape() {
        let j = Journal::default();
        j.enable();
        let q = j.next_query_id();
        j.record(|| EventData::new(EventKind::QueryStart, q, "parse").detail("p(x)"));
        j.record(|| EventData::new(EventKind::PlanCacheMiss, q, "plan-cache"));
        j.record(|| EventData::new(EventKind::QueryEnd, q, "evaluate").dur_ns(1234));
        let json = j.to_chrome_trace().to_string();
        assert!(json.contains("\"traceEvents\""), "{json}");
        assert!(json.contains("\"ph\": \"B\""), "{json}");
        assert!(json.contains("\"ph\": \"E\""), "{json}");
        assert!(json.contains("\"ph\": \"i\""), "{json}");
    }

    #[test]
    fn pipeline_events_export_as_paired_spans() {
        let j = Journal::default();
        j.enable();
        let q = j.next_query_id();
        j.record(|| EventData::new(EventKind::QueryStart, q, "evaluate"));
        j.record(|| EventData::new(EventKind::PipelineStart, q, "evaluate").detail("pipeline 1"));
        j.record(|| {
            EventData::new(EventKind::PipelineBreak, q, "evaluate")
                .detail("pipeline 1 join-build tuples=42")
        });
        j.record(|| EventData::new(EventKind::QueryEnd, q, "evaluate").dur_ns(10));
        let json = j.to_chrome_trace().to_string();
        // The start and its break share the "pipeline 1" span name, so
        // Perfetto pairs them into one nested slice.
        assert_eq!(
            json.matches("\"name\": \"pipeline 1\"").count(),
            2,
            "{json}"
        );
        assert!(json.contains("\"cat\": \"pipeline_break\""), "{json}");
    }

    #[test]
    fn window_stats_aggregate_last_n() {
        let j = Journal::default();
        j.enable();
        for i in 1..=6u64 {
            j.record(|| EventData::new(EventKind::QueryStart, i, "parse"));
            j.record(|| EventData::new(EventKind::PlanCacheMiss, i, "plan-cache"));
            if i % 2 == 0 {
                j.record(|| EventData::new(EventKind::GovernorTrip, i, "evaluate"));
                j.record(|| EventData::new(EventKind::QueryError, i, "evaluate").dur_ns(2_000));
            } else {
                j.record(|| EventData::new(EventKind::QueryEnd, i, "evaluate").dur_ns(1_000));
            }
        }
        let w = j.window_stats(4);
        assert_eq!(w.queries, 4);
        assert_eq!(w.errors, 2);
        assert_eq!(w.plan_cache_misses, 4);
        assert_eq!(w.governor_trips, 2);
        assert!(w.p50_ns >= 1_000 && w.p99_ns >= w.p50_ns);
        // The full window covers everything.
        let all = j.window_stats(100);
        assert_eq!(all.queries, 6);
        assert_eq!(all.errors, 3);
    }

    #[test]
    fn window_stats_empty_journal() {
        let j = Journal::default();
        assert_eq!(j.window_stats(10), WindowStats::default());
    }
}
