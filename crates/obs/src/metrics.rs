//! Engine-lifetime metrics: named counters and log-scale latency
//! histograms behind an `AtomicBool` so the disabled path costs one
//! relaxed load and no timing syscalls.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples with
/// `floor(log2(ns)) == i`, covering 1 ns .. ~18 s and beyond.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

// `Default` is not derivable: std only implements it for arrays of ≤ 32.
impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    pub fn mean(&self) -> Duration {
        match self.total_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Upper bound of the bucket holding the q-quantile sample
    /// (log₂ resolution: within a factor of two of the true quantile),
    /// clamped to the observed maximum so the estimate never exceeds a
    /// latency that actually happened.
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                let upper = 1u64 << (i + 1).min(63);
                return Duration::from_nanos(upper.min(self.max_ns));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one (saturating: merging two
    /// near-full histograms cannot wrap counts).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    fn to_json(&self) -> Json {
        let nonzero: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                Json::obj()
                    .field("le_ns", 1u64 << (i + 1).min(63))
                    .field("count", n)
            })
            .collect();
        Json::obj()
            .field("count", self.count)
            .field("total_ns", self.total_ns)
            .field("mean_ns", self.mean().as_nanos() as u64)
            .field("p50_ns", self.quantile(0.5).as_nanos() as u64)
            .field("p99_ns", self.quantile(0.99).as_nanos() as u64)
            .field("max_ns", self.max_ns)
            .field("buckets", nonzero)
    }
}

/// A point-in-time copy of a [`Registry`]'s contents, optionally joined
/// with a rolling window over the flight recorder's recent queries.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
    /// Rolling-window aggregates (p50/p99 latency, hit rate, trip counts
    /// over the last N queries) from [`crate::Journal::window_stats`];
    /// `None` when no journal is attached or it has seen no queries.
    pub window: Option<crate::journal::WindowStats>,
}

impl MetricsSnapshot {
    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.field(k.clone(), *v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            histograms = histograms.field(k.clone(), h.to_json());
        }
        let mut out = Json::obj()
            .field("counters", counters)
            .field("histograms", histograms);
        if let Some(w) = &self.window {
            out = out.field("window", w.to_json());
        }
        out
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named counters + histograms, disabled by default.
///
/// The contract callers rely on: when disabled, [`Registry::incr`] and
/// [`Registry::observe`] are a single relaxed atomic load, and callers are
/// expected to gate their `Instant::now()` pairs on
/// [`Registry::is_enabled`] so the disabled path performs no timing
/// syscalls at all.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` to a named counter (no-op when disabled).
    pub fn incr(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_default() += n;
    }

    /// Record a latency sample into a named histogram (no-op when
    /// disabled — but gate the surrounding `Instant::now()` on
    /// [`Registry::is_enabled`] too).
    pub fn observe(&self, name: &str, d: Duration) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Copy out the current contents (works even while disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
            window: None,
        }
    }

    /// Zero all metrics.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.clear();
        inner.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.incr("queries", 1);
        r.observe("latency", Duration::from_millis(5));
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.histograms.is_empty());
    }

    #[test]
    fn enabled_registry_accumulates() {
        let r = Registry::new();
        r.enable();
        r.incr("queries", 1);
        r.incr("queries", 2);
        r.observe("latency", Duration::from_micros(10));
        let s = r.snapshot();
        assert_eq!(s.counters["queries"], 3);
        assert_eq!(s.histograms["latency"].count(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(100)); // bucket ⌊log2 100⌋ = 6
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_micros(100)); // ⌊log2 1e5⌋ = 16
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.5) <= Duration::from_nanos(128));
        assert!(h.quantile(1.0) >= Duration::from_micros(100));
        assert_eq!(h.max(), Duration::from_micros(100));
    }

    #[test]
    fn histogram_merge_sums() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn quantile_never_exceeds_observed_max() {
        // One 100 ns sample lands in the [64, 128) bucket; the naive
        // bucket upper bound (128 ns) overstates the true max.
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(100));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert!(
                h.quantile(q) <= h.max(),
                "q={q}: {:?} > max {:?}",
                h.quantile(q),
                h.max()
            );
        }
        assert_eq!(h.quantile(1.0), Duration::from_nanos(100));
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.quantile(1.0), Duration::ZERO);
    }

    #[test]
    fn quantile_of_merged_histograms_clamps_to_joint_max() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_nanos(100));
        b.record(Duration::from_nanos(90)); // same bucket, smaller max
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(0.99) <= Duration::from_nanos(100));
        assert!(a.quantile(0.5) > Duration::ZERO);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = Histogram::new();
        a.record(Duration::from_nanos(10));
        // Self-merge doubles count/buckets each round: 1 → 2^63 after 63
        // rounds; the 64th would overflow without saturation.
        for _ in 0..63 {
            let snapshot = a.clone();
            a.merge(&snapshot);
        }
        assert_eq!(a.count(), 1u64 << 63);
        let snapshot = a.clone();
        a.merge(&snapshot); // would panic (debug) or wrap (release) unsaturated
        assert_eq!(a.count(), u64::MAX);
        assert!(a.quantile(0.5) <= a.max());
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.enable();
        r.incr("x", 7);
        let json = r.snapshot().to_json().to_string();
        assert!(json.contains("\"x\": 7"), "{json}");
    }
}
