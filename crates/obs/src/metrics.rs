//! Engine-lifetime metrics: named counters and log-scale latency
//! histograms behind an `AtomicBool` so the disabled path costs one
//! relaxed load and no timing syscalls.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two latency buckets: bucket `i` holds samples with
/// `floor(log2(ns)) == i`, covering 1 ns .. ~18 s and beyond.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A log₂-bucketed latency histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

// `Default` is not derivable: std only implements it for arrays of ≤ 32.
impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            total_ns: 0,
            max_ns: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let ns = d.as_nanos().min(u64::MAX as u128) as u64;
        let bucket = (64 - ns.max(1).leading_zeros() as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.total_ns)
    }

    pub fn mean(&self) -> Duration {
        match self.total_ns.checked_div(self.count) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }

    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns)
    }

    /// Upper bound of the bucket holding the q-quantile sample
    /// (log₂ resolution: within a factor of two of the true quantile).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(1u64 << (i + 1).min(63));
            }
        }
        self.max()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    fn to_json(&self) -> Json {
        let nonzero: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                Json::obj()
                    .field("le_ns", 1u64 << (i + 1).min(63))
                    .field("count", n)
            })
            .collect();
        Json::obj()
            .field("count", self.count)
            .field("total_ns", self.total_ns)
            .field("mean_ns", self.mean().as_nanos() as u64)
            .field("p50_ns", self.quantile(0.5).as_nanos() as u64)
            .field("p99_ns", self.quantile(0.99).as_nanos() as u64)
            .field("max_ns", self.max_ns)
            .field("buckets", nonzero)
    }
}

/// A point-in-time copy of a [`Registry`]'s contents.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Machine-readable JSON rendering.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.field(k.clone(), *v);
        }
        let mut histograms = Json::obj();
        for (k, h) in &self.histograms {
            histograms = histograms.field(k.clone(), h.to_json());
        }
        Json::obj()
            .field("counters", counters)
            .field("histograms", histograms)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// Named counters + histograms, disabled by default.
///
/// The contract callers rely on: when disabled, [`Registry::incr`] and
/// [`Registry::observe`] are a single relaxed atomic load, and callers are
/// expected to gate their `Instant::now()` pairs on
/// [`Registry::is_enabled`] so the disabled path performs no timing
/// syscalls at all.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<RegistryInner>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Add `n` to a named counter (no-op when disabled).
    pub fn incr(&self, name: &str, n: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_default() += n;
    }

    /// Record a latency sample into a named histogram (no-op when
    /// disabled — but gate the surrounding `Instant::now()` on
    /// [`Registry::is_enabled`] too).
    pub fn observe(&self, name: &str, d: Duration) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Copy out the current contents (works even while disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Zero all metrics.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.counters.clear();
        inner.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        r.incr("queries", 1);
        r.observe("latency", Duration::from_millis(5));
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.histograms.is_empty());
    }

    #[test]
    fn enabled_registry_accumulates() {
        let r = Registry::new();
        r.enable();
        r.incr("queries", 1);
        r.incr("queries", 2);
        r.observe("latency", Duration::from_micros(10));
        let s = r.snapshot();
        assert_eq!(s.counters["queries"], 3);
        assert_eq!(s.histograms["latency"].count(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        h.record(Duration::from_nanos(100)); // bucket ⌊log2 100⌋ = 6
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_micros(100)); // ⌊log2 1e5⌋ = 16
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.5) <= Duration::from_nanos(128));
        assert!(h.quantile(1.0) >= Duration::from_micros(100));
        assert_eq!(h.max(), Duration::from_micros(100));
    }

    #[test]
    fn histogram_merge_sums() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(Duration::from_nanos(10));
        b.record(Duration::from_nanos(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn snapshot_json_shape() {
        let r = Registry::new();
        r.enable();
        r.incr("x", 7);
        let json = r.snapshot().to_json().to_string();
        assert!(json.contains("\"x\": 7"), "{json}");
    }
}
