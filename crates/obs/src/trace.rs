//! Per-query tracing: hierarchical phase spans, named counters,
//! plan-shape facts, and an annotated plan tree with per-node runtime
//! metrics. A [`TraceBuilder`] is created per analyzed query and finished
//! into an immutable [`QueryTrace`].

use crate::json::Json;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One completed span: a named phase with its position in the hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: String,
    /// Nesting depth (0 = top-level phase).
    pub depth: usize,
    /// Start offset from the trace origin, nanoseconds.
    pub start_ns: u64,
    pub duration_ns: u64,
}

/// Per-node runtime metrics of an executed plan. Counter fields hold the
/// node's *exclusive* share (work not attributed to any child), so sums
/// over a tree equal the query-level totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanNodeTrace {
    /// Operator label, e.g. `⊼ on [(0,0)]` or `scan member`.
    pub label: String,
    /// Optional annotation, e.g. `cached-index` or `memo-hit`.
    pub note: Option<String>,
    /// Tuples this node emitted (pulled by its consumer).
    pub rows_out: u64,
    /// Loop iterations (nested-loop interpreter nodes; 0 for algebra).
    pub iterations: u64,
    pub base_reads: u64,
    pub comparisons: u64,
    pub probes: u64,
    pub memo_hits: u64,
    /// Exclusive wall time, nanoseconds.
    pub elapsed_ns: u64,
    pub children: Vec<PlanNodeTrace>,
}

/// Subtree totals of a [`PlanNodeTrace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanTotals {
    pub rows_out: u64,
    pub base_reads: u64,
    pub comparisons: u64,
    pub probes: u64,
    pub memo_hits: u64,
    pub elapsed_ns: u64,
}

impl PlanNodeTrace {
    /// New node with a label; metrics zero until attributed.
    pub fn new(label: impl Into<String>) -> Self {
        PlanNodeTrace {
            label: label.into(),
            ..PlanNodeTrace::default()
        }
    }

    /// Aggregate this subtree's exclusive metrics.
    pub fn totals(&self) -> PlanTotals {
        let mut t = PlanTotals {
            rows_out: self.rows_out,
            base_reads: self.base_reads,
            comparisons: self.comparisons,
            probes: self.probes,
            memo_hits: self.memo_hits,
            elapsed_ns: self.elapsed_ns,
        };
        for c in &self.children {
            let ct = c.totals();
            t.rows_out += ct.rows_out;
            t.base_reads += ct.base_reads;
            t.comparisons += ct.comparisons;
            t.probes += ct.probes;
            t.memo_hits += ct.memo_hits;
            t.elapsed_ns += ct.elapsed_ns;
        }
        t
    }

    /// Render the annotated tree; per-node time is shown as a percentage
    /// of `total_ns` (pass the root's total elapsed).
    pub fn render(&self, total_ns: u64) -> String {
        let mut out = String::new();
        self.render_into(&mut out, "", total_ns);
        out
    }

    fn render_into(&self, out: &mut String, prefix: &str, total_ns: u64) {
        let pct = if total_ns > 0 {
            100.0 * self.elapsed_ns as f64 / total_ns as f64
        } else {
            0.0
        };
        let mut line = format!(
            "{prefix}{}  [rows={} cmp={} probes={} reads={}",
            self.label, self.rows_out, self.comparisons, self.probes, self.base_reads
        );
        if self.iterations > 0 {
            let _ = write!(line, " iter={}", self.iterations);
        }
        if self.memo_hits > 0 {
            let _ = write!(line, " memo_hits={}", self.memo_hits);
        }
        let _ = write!(line, " time={} ({pct:.1}%)]", fmt_ns(self.elapsed_ns));
        if let Some(note) = &self.note {
            let _ = write!(line, " <{note}>");
        }
        out.push_str(&line);
        out.push('\n');
        let child_prefix = if prefix.is_empty() {
            "  ".to_string()
        } else {
            format!("{prefix}  ")
        };
        for c in &self.children {
            c.render_into(out, &child_prefix, total_ns);
        }
    }

    pub fn to_json(&self) -> Json {
        let mut j = Json::obj().field("label", self.label.clone());
        if let Some(note) = &self.note {
            j = j.field("note", note.clone());
        }
        j = j
            .field("rows_out", self.rows_out)
            .field("base_reads", self.base_reads)
            .field("comparisons", self.comparisons)
            .field("probes", self.probes);
        if self.iterations > 0 {
            j = j.field("iterations", self.iterations);
        }
        if self.memo_hits > 0 {
            j = j.field("memo_hits", self.memo_hits);
        }
        j = j.field("elapsed_ns", self.elapsed_ns);
        if !self.children.is_empty() {
            j = j.field(
                "children",
                self.children
                    .iter()
                    .map(|c| c.to_json())
                    .collect::<Vec<_>>(),
            );
        }
        j
    }
}

/// One pipeline of a streaming (push-based) execution: the chain of
/// operators between two breakers, identified in coordinator order, with
/// the breaker that ended it and the live-watermark snapshot at that
/// point. Surfaced by `:analyze` next to the annotated plan tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineSpan {
    /// Pipeline id in structural (coordinator) order; 0 is the root
    /// pipeline that feeds the result sink.
    pub id: u64,
    /// The breaker kind that terminated the pipeline (`output`,
    /// `join-build`, `probe-build`, `cse-share`, …).
    pub breaker: String,
    /// Tuples the breaker materialized (result size for `output`).
    pub tuples: u64,
    /// Live intermediate tuples held when the breaker fired.
    pub live_tuples: u64,
    /// Live intermediate bytes held when the breaker fired.
    pub live_bytes: u64,
}

impl PipelineSpan {
    /// Machine-readable rendering.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("id", self.id)
            .field("breaker", self.breaker.clone())
            .field("tuples", self.tuples)
            .field("live_tuples", self.live_tuples)
            .field("live_bytes", self.live_bytes)
    }
}

/// Format nanoseconds human-readably.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The finished, immutable trace of one query execution.
#[derive(Debug, Clone)]
pub struct QueryTrace {
    pub query: String,
    pub strategy: String,
    pub total_ns: u64,
    pub spans: Vec<SpanRecord>,
    pub counters: BTreeMap<String, u64>,
    /// Plan-shape facts (uses_division, operator counts, …).
    pub facts: Vec<(String, Json)>,
    /// The annotated plan tree, when the strategy has one.
    pub plan: Option<PlanNodeTrace>,
    /// Pipeline-breaker boundaries of a streaming execution (empty for
    /// strategies without a pipeline decomposition).
    pub pipelines: Vec<PipelineSpan>,
}

impl QueryTrace {
    /// Machine-readable rendering (the `QueryTrace` JSON schema).
    pub fn to_json(&self) -> Json {
        let spans: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                Json::obj()
                    .field("name", s.name.clone())
                    .field("depth", s.depth)
                    .field("start_ns", s.start_ns)
                    .field("duration_ns", s.duration_ns)
            })
            .collect();
        let mut counters = Json::obj();
        for (k, v) in &self.counters {
            counters = counters.field(k.clone(), *v);
        }
        let mut facts = Json::obj();
        for (k, v) in &self.facts {
            facts = facts.field(k.clone(), v.clone());
        }
        let mut j = Json::obj()
            .field("query", self.query.clone())
            .field("strategy", self.strategy.clone())
            .field("total_ns", self.total_ns)
            .field("spans", spans)
            .field("counters", counters)
            .field("facts", facts);
        if let Some(plan) = &self.plan {
            j = j.field("plan", plan.to_json());
        }
        if !self.pipelines.is_empty() {
            j = j.field(
                "pipelines",
                self.pipelines
                    .iter()
                    .map(|p| p.to_json())
                    .collect::<Vec<_>>(),
            );
        }
        j
    }

    /// Human-readable rendering: span waterfall, counters, facts, and the
    /// annotated plan tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "query: {}", self.query);
        let _ = writeln!(
            out,
            "strategy: {}   total: {}",
            self.strategy,
            fmt_ns(self.total_ns)
        );
        if !self.spans.is_empty() {
            let _ = writeln!(out, "\n== phases ==");
            for s in &self.spans {
                let pct = if self.total_ns > 0 {
                    100.0 * s.duration_ns as f64 / self.total_ns as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "{:indent$}{:<14} {:>10} ({pct:.1}%)",
                    "",
                    s.name,
                    fmt_ns(s.duration_ns),
                    indent = 2 * (s.depth + 1)
                );
            }
        }
        if !self.facts.is_empty() {
            let _ = writeln!(out, "\n== plan shape ==");
            for (k, v) in &self.facts {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\n== counters ==");
            for (k, v) in &self.counters {
                let _ = writeln!(out, "  {k} = {v}");
            }
        }
        if let Some(plan) = &self.plan {
            let _ = writeln!(out, "\n== plan (actual) ==");
            out.push_str(&plan.render(plan.totals().elapsed_ns));
        }
        if !self.pipelines.is_empty() {
            let _ = writeln!(out, "\n== pipelines ==");
            for p in &self.pipelines {
                let _ = writeln!(
                    out,
                    "  #{:<3} {:<18} tuples={:<8} live_peak={} tuples / {} bytes",
                    p.id, p.breaker, p.tuples, p.live_tuples, p.live_bytes
                );
            }
        }
        out
    }
}

/// Collects spans/counters/facts during one query execution.
///
/// Single-threaded by design (queries execute on one thread); interior
/// mutability keeps the recording API `&self` so it can be threaded
/// through evaluators without infecting their signatures with `&mut`.
pub struct TraceBuilder {
    origin: Instant,
    spans: RefCell<Vec<SpanRecord>>,
    stack: RefCell<Vec<usize>>,
    counters: RefCell<BTreeMap<String, u64>>,
    facts: RefCell<Vec<(String, Json)>>,
    plan: RefCell<Option<PlanNodeTrace>>,
    pipelines: RefCell<Vec<PipelineSpan>>,
}

impl Default for TraceBuilder {
    fn default() -> Self {
        TraceBuilder::new()
    }
}

impl TraceBuilder {
    pub fn new() -> Self {
        TraceBuilder {
            origin: Instant::now(),
            spans: RefCell::new(Vec::new()),
            stack: RefCell::new(Vec::new()),
            counters: RefCell::new(BTreeMap::new()),
            facts: RefCell::new(Vec::new()),
            plan: RefCell::new(None),
            pipelines: RefCell::new(Vec::new()),
        }
    }

    /// Open a span; it closes (and records its duration) when the guard
    /// drops. Spans opened while another is live nest under it.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard<'_> {
        let depth = self.stack.borrow().len();
        let idx = {
            let mut spans = self.spans.borrow_mut();
            spans.push(SpanRecord {
                name: name.into(),
                depth,
                start_ns: self.origin.elapsed().as_nanos() as u64,
                duration_ns: 0,
            });
            spans.len() - 1
        };
        self.stack.borrow_mut().push(idx);
        SpanGuard {
            builder: self,
            idx,
            start: Instant::now(),
        }
    }

    /// Add to a named counter.
    pub fn incr(&self, name: &str, n: u64) {
        *self
            .counters
            .borrow_mut()
            .entry(name.to_string())
            .or_default() += n;
    }

    /// Record a plan-shape fact.
    pub fn fact(&self, name: impl Into<String>, value: impl Into<Json>) {
        self.facts.borrow_mut().push((name.into(), value.into()));
    }

    /// Attach the annotated plan tree.
    pub fn set_plan(&self, plan: PlanNodeTrace) {
        *self.plan.borrow_mut() = Some(plan);
    }

    /// Attach the pipeline-breaker boundaries of a streaming execution.
    pub fn set_pipelines(&self, pipelines: Vec<PipelineSpan>) {
        *self.pipelines.borrow_mut() = pipelines;
    }

    /// Finish into an immutable trace.
    pub fn finish(self, query: impl Into<String>, strategy: impl Into<String>) -> QueryTrace {
        QueryTrace {
            query: query.into(),
            strategy: strategy.into(),
            total_ns: self.origin.elapsed().as_nanos() as u64,
            spans: self.spans.into_inner(),
            counters: self.counters.into_inner(),
            facts: self.facts.into_inner(),
            plan: self.plan.into_inner(),
            pipelines: self.pipelines.into_inner(),
        }
    }
}

/// Closes its span on drop.
pub struct SpanGuard<'a> {
    builder: &'a TraceBuilder,
    idx: usize,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        self.builder.spans.borrow_mut()[self.idx].duration_ns = elapsed;
        self.builder.stack.borrow_mut().pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_close() {
        let tb = TraceBuilder::new();
        {
            let _outer = tb.span("outer");
            let _inner = tb.span("inner");
        }
        let t = tb.finish("q", "improved");
        assert_eq!(t.spans.len(), 2);
        assert_eq!(t.spans[0].name, "outer");
        assert_eq!(t.spans[0].depth, 0);
        assert_eq!(t.spans[1].depth, 1);
        assert!(t.spans[0].duration_ns >= t.spans[1].duration_ns);
    }

    #[test]
    fn counters_and_facts_survive_finish() {
        let tb = TraceBuilder::new();
        tb.incr("rewrite.steps", 3);
        tb.incr("rewrite.steps", 2);
        tb.fact("uses_division", false);
        let t = tb.finish("q", "classical");
        assert_eq!(t.counters["rewrite.steps"], 5);
        assert_eq!(t.facts[0].0, "uses_division");
    }

    #[test]
    fn plan_totals_sum_subtree() {
        let mut root = PlanNodeTrace::new("join");
        root.comparisons = 5;
        root.rows_out = 2;
        let mut child = PlanNodeTrace::new("scan p");
        child.base_reads = 10;
        child.rows_out = 10;
        root.children.push(child);
        let t = root.totals();
        assert_eq!(t.comparisons, 5);
        assert_eq!(t.base_reads, 10);
        assert_eq!(t.rows_out, 12);
    }

    #[test]
    fn render_shows_percentages() {
        let mut root = PlanNodeTrace::new("scan p");
        root.elapsed_ns = 1000;
        root.rows_out = 4;
        let s = root.render(2000);
        assert!(s.contains("rows=4"), "{s}");
        assert!(s.contains("50.0%"), "{s}");
    }

    #[test]
    fn pipelines_render_only_when_present() {
        let tb = TraceBuilder::new();
        let without = tb.finish("q", "improved");
        assert!(!without.render().contains("== pipelines =="));
        let tb = TraceBuilder::new();
        tb.set_pipelines(vec![PipelineSpan {
            id: 1,
            breaker: "join-build".into(),
            tuples: 42,
            live_tuples: 42,
            live_bytes: 4800,
        }]);
        let with = tb.finish("q", "improved");
        let text = with.render();
        assert!(text.contains("== pipelines =="), "{text}");
        assert!(text.contains("join-build"), "{text}");
        let json = with.to_json().to_string();
        assert!(json.contains("\"pipelines\""), "{json}");
        assert!(json.contains("\"live_bytes\": 4800"), "{json}");
    }

    #[test]
    fn trace_json_is_well_formed() {
        let tb = TraceBuilder::new();
        tb.incr("c", 1);
        let _s = tb.span("evaluate");
        drop(_s);
        let mut plan = PlanNodeTrace::new("scan \"p\"");
        plan.note = Some("cached-index".into());
        tb.set_plan(plan);
        let json = tb.finish("p(x)", "improved").to_json().to_string();
        assert!(json.contains("\"strategy\": \"improved\""), "{json}");
        assert!(json.contains("\\\"p\\\""), "escaped label: {json}");
    }
}
