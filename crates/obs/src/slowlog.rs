//! The slow-query log: deep detail, retained only for outliers.
//!
//! The flight recorder ([`crate::Journal`]) keeps a *shallow* record of
//! every query; the slow log is its complement — when a query exceeds a
//! configurable latency or intermediate-tuple threshold, its full
//! [`QueryTrace`] (phase spans, counters, plan-shape facts, annotated
//! plan tree) plus the governor's high-water marks are retained in a
//! bounded insertion-ordered LRU for post-hoc `EXPLAIN`-grade
//! inspection of queries nobody asked to profile.
//!
//! Thresholds are runtime-settable atomics, so the engine's per-query
//! check ("is the slow log armed?") is two relaxed loads; while disarmed
//! (the default) queries are not traced at all and the log costs
//! nothing.

use crate::trace::{fmt_ns, QueryTrace};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Default bound on retained entries.
pub const DEFAULT_SLOWLOG_CAPACITY: usize = 64;

/// Sentinel for "threshold disabled".
const OFF: u64 = u64::MAX;

/// One retained outlier: the query's full trace plus the governor's
/// watermarks at completion.
#[derive(Debug, Clone)]
pub struct SlowLogEntry {
    /// The flight-recorder query id (joins against journal events).
    pub query_id: u64,
    /// Full deep trace (spans, counters, facts, annotated plan).
    pub trace: QueryTrace,
    /// Governor high-water mark: peak live intermediate tuples.
    pub peak_intermediate_tuples: u64,
    /// Governor high-water mark: peak estimated intermediate bytes.
    pub peak_memory_bytes: u64,
    /// Answers returned (0 for errored queries).
    pub answers: u64,
    /// Which threshold(s) fired, e.g. `"latency"` or `"latency+tuples"`.
    pub reason: &'static str,
}

impl SlowLogEntry {
    /// One-line summary (REPL `:slowlog` listing).
    pub fn summary(&self) -> String {
        format!(
            "q{:<5} {:>10}  tuples={:<8} bytes={:<10} answers={:<6} [{}] {}",
            self.query_id,
            fmt_ns(self.trace.total_ns),
            self.peak_intermediate_tuples,
            self.peak_memory_bytes,
            self.answers,
            self.reason,
            truncate(&self.trace.query, 60),
        )
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let head: String = s.chars().take(max.saturating_sub(1)).collect();
        format!("{head}…")
    }
}

/// Bounded retention of slow-query evidence. Shareable behind an `Arc`.
pub struct SlowLog {
    /// Latency threshold in ns; `OFF` disables.
    latency_ns: AtomicU64,
    /// Peak-intermediate-tuple threshold; `OFF` disables.
    tuples: AtomicU64,
    capacity: usize,
    entries: Mutex<VecDeque<SlowLogEntry>>,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::with_capacity(DEFAULT_SLOWLOG_CAPACITY)
    }
}

impl SlowLog {
    /// A disarmed slow log bounded to `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        SlowLog {
            latency_ns: AtomicU64::new(OFF),
            tuples: AtomicU64::new(OFF),
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Arm/disarm the latency threshold.
    pub fn set_latency_threshold(&self, t: Option<Duration>) {
        let ns = t
            .map(|d| (d.as_nanos().min(OFF as u128 - 1)) as u64)
            .unwrap_or(OFF);
        self.latency_ns.store(ns, Ordering::Relaxed);
    }

    /// Arm/disarm the peak-intermediate-tuples threshold.
    pub fn set_tuple_threshold(&self, t: Option<u64>) {
        self.tuples
            .store(t.map(|n| n.min(OFF - 1)).unwrap_or(OFF), Ordering::Relaxed);
    }

    /// Current latency threshold, if armed.
    pub fn latency_threshold(&self) -> Option<Duration> {
        match self.latency_ns.load(Ordering::Relaxed) {
            OFF => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Current tuple threshold, if armed.
    pub fn tuple_threshold(&self) -> Option<u64> {
        match self.tuples.load(Ordering::Relaxed) {
            OFF => None,
            n => Some(n),
        }
    }

    /// Is any threshold armed? (The engine only traces queries — and
    /// pays tracing's overhead — while this is true.)
    pub fn is_armed(&self) -> bool {
        self.latency_ns.load(Ordering::Relaxed) != OFF || self.tuples.load(Ordering::Relaxed) != OFF
    }

    /// Which thresholds does a completed query trip? `None` = fast enough.
    pub fn breach(&self, total_ns: u64, peak_tuples: u64) -> Option<&'static str> {
        let slow = total_ns >= self.latency_ns.load(Ordering::Relaxed);
        let fat = peak_tuples >= self.tuples.load(Ordering::Relaxed);
        match (slow, fat) {
            (true, true) => Some("latency+tuples"),
            (true, false) => Some("latency"),
            (false, true) => Some("tuples"),
            (false, false) => None,
        }
    }

    /// Retain an outlier, evicting the oldest entry when full.
    pub fn push(&self, entry: SlowLogEntry) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        if entries.len() >= self.capacity {
            entries.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        entries.push_back(entry);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<SlowLogEntry>> {
        match self.entries.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Retained entries, oldest first.
    pub fn entries(&self) -> Vec<SlowLogEntry> {
        self.lock().iter().cloned().collect()
    }

    /// The entry for a specific query id, if still retained.
    pub fn get(&self, query_id: u64) -> Option<SlowLogEntry> {
        self.lock().iter().find(|e| e.query_id == query_id).cloned()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Is the log empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Outliers ever retained (survives eviction).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Entries evicted by the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Drop all retained entries (thresholds stay armed).
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl std::fmt::Debug for SlowLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowLog")
            .field("armed", &self.is_armed())
            .field("latency", &self.latency_threshold())
            .field("tuples", &self.tuple_threshold())
            .field("len", &self.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceBuilder;

    fn entry(qid: u64, total_ns: u64) -> SlowLogEntry {
        let mut trace = TraceBuilder::new().finish(format!("q{qid}"), "improved");
        trace.total_ns = total_ns;
        SlowLogEntry {
            query_id: qid,
            trace,
            peak_intermediate_tuples: 10,
            peak_memory_bytes: 400,
            answers: 3,
            reason: "latency",
        }
    }

    #[test]
    fn disarmed_by_default() {
        let log = SlowLog::default();
        assert!(!log.is_armed());
        assert_eq!(log.breach(u64::MAX - 1, u64::MAX - 1), None);
    }

    #[test]
    fn breach_reasons() {
        let log = SlowLog::default();
        log.set_latency_threshold(Some(Duration::from_millis(1)));
        assert!(log.is_armed());
        assert_eq!(log.breach(2_000_000, 0), Some("latency"));
        assert_eq!(log.breach(10, 0), None);
        log.set_tuple_threshold(Some(100));
        assert_eq!(log.breach(2_000_000, 500), Some("latency+tuples"));
        assert_eq!(log.breach(10, 500), Some("tuples"));
        log.set_latency_threshold(None);
        log.set_tuple_threshold(None);
        assert!(!log.is_armed());
    }

    #[test]
    fn bounded_retention_evicts_oldest() {
        let log = SlowLog::with_capacity(3);
        for qid in 1..=5u64 {
            log.push(entry(qid, 1_000 * qid));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.evicted(), 2);
        let ids: Vec<u64> = log.entries().iter().map(|e| e.query_id).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert!(log.get(1).is_none());
        assert!(log.get(4).is_some());
    }

    #[test]
    fn clear_keeps_thresholds() {
        let log = SlowLog::default();
        log.set_latency_threshold(Some(Duration::from_micros(5)));
        log.push(entry(1, 10_000));
        log.clear();
        assert!(log.is_empty());
        assert!(log.is_armed());
    }

    #[test]
    fn summary_mentions_reason_and_query() {
        let e = entry(7, 2_000_000);
        let s = e.summary();
        assert!(s.contains("q7"), "{s}");
        assert!(s.contains("[latency]"), "{s}");
        assert!(s.contains("2.00ms"), "{s}");
    }
}
