//! # gq-obs — dependency-free observability
//!
//! The paper's efficiency claims are about *operation counts*; this crate
//! is the measurement substrate that attributes those counts (and wall
//! time) to phases and plan nodes, in the spirit of the Volcano iterator
//! model's uniform instrumentation boundary:
//!
//! * [`TraceBuilder`] / [`QueryTrace`] — per-query hierarchical spans
//!   (`parse → view-expand → normalize → translate → optimize →
//!   evaluate`), named counters, plan-shape facts, and an annotated
//!   [`PlanNodeTrace`] tree with per-node rows/comparisons/probes/time;
//! * [`Registry`] / [`MetricsSnapshot`] — engine-lifetime counters and
//!   log₂-bucketed latency [`Histogram`]s behind an `AtomicBool`, so the
//!   disabled path is one relaxed load and **no timing syscalls**;
//! * [`Journal`] — the flight recorder: an always-on fixed-capacity
//!   ring buffer of lifecycle events (query start/end, plan-cache
//!   hit/miss, governor trips, WAL/checkpoint activity, chaos
//!   injections) with Chrome `trace_event` export and rolling-window
//!   aggregation; disabled it costs one relaxed load per site;
//! * [`SlowLog`] — bounded retention of full [`QueryTrace`]s + governor
//!   watermarks for queries that breach latency/tuple thresholds;
//! * [`Json`] — a hand-rolled JSON writer **and parser** (the build is
//!   offline; no serde), used by both snapshot kinds and the bench
//!   regression differ.
//!
//! Everything is std-only. Evaluators gate their instrumentation on
//! `Option`s so tier-1 numbers are unaffected when observability is off.

mod journal;
mod json;
mod metrics;
mod slowlog;
mod trace;

pub use journal::{Event, EventData, EventKind, Journal, WindowStats, DEFAULT_JOURNAL_CAPACITY};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS};
pub use slowlog::{SlowLog, SlowLogEntry, DEFAULT_SLOWLOG_CAPACITY};
pub use trace::{
    fmt_ns, PipelineSpan, PlanNodeTrace, PlanTotals, QueryTrace, SpanGuard, SpanRecord,
    TraceBuilder,
};
