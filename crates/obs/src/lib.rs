//! # gq-obs — dependency-free observability
//!
//! The paper's efficiency claims are about *operation counts*; this crate
//! is the measurement substrate that attributes those counts (and wall
//! time) to phases and plan nodes, in the spirit of the Volcano iterator
//! model's uniform instrumentation boundary:
//!
//! * [`TraceBuilder`] / [`QueryTrace`] — per-query hierarchical spans
//!   (`parse → view-expand → normalize → translate → optimize →
//!   evaluate`), named counters, plan-shape facts, and an annotated
//!   [`PlanNodeTrace`] tree with per-node rows/comparisons/probes/time;
//! * [`Registry`] / [`MetricsSnapshot`] — engine-lifetime counters and
//!   log₂-bucketed latency [`Histogram`]s behind an `AtomicBool`, so the
//!   disabled path is one relaxed load and **no timing syscalls**;
//! * [`Json`] — a hand-rolled JSON writer (the build is offline; no
//!   serde), used by both snapshot kinds.
//!
//! Everything is std-only. Evaluators gate their instrumentation on
//! `Option`s so tier-1 numbers are unaffected when observability is off.

mod json;
mod metrics;
mod trace;

pub use json::Json;
pub use metrics::{Histogram, MetricsSnapshot, Registry, HISTOGRAM_BUCKETS};
pub use trace::{
    fmt_ns, PlanNodeTrace, PlanTotals, QueryTrace, SpanGuard, SpanRecord, TraceBuilder,
};
