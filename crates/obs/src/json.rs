//! A hand-rolled JSON value + writer (the workspace is offline: no serde).
//!
//! Only what the observability snapshots need: objects, arrays, strings,
//! integers, floats, booleans, null — with correct string escaping and
//! deterministic (insertion-ordered) object keys.

use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, nanosecond totals).
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object (panics on non-objects — builder misuse).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
            if inner.is_none() {
                out.push(' ');
            }
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .field("name", "a \"quoted\" name\n")
            .field("count", 3u64)
            .field("items", vec![Json::UInt(1), Json::Bool(false), Json::Null]);
        assert_eq!(
            j.to_string(),
            r#"{"name": "a \"quoted\" name\n", "count": 3, "items": [1, false, null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().field("a", Json::obj().field("b", 1u64));
        assert_eq!(j.pretty(), "{\n  \"a\": {\n    \"b\": 1\n  }\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{1}".to_string());
        assert_eq!(j.to_string(), "\"\\u0001\"");
    }
}
