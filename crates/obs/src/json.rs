//! A hand-rolled JSON value + writer (the workspace is offline: no serde).
//!
//! Only what the observability snapshots need: objects, arrays, strings,
//! integers, floats, booleans, null — with correct string escaping and
//! deterministic (insertion-ordered) object keys.

use std::fmt;

/// A JSON document fragment.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, nanosecond totals).
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object (panics on non-objects — builder misuse).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.into(), value.into())),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Look up a field of an object (`None` on non-objects / missing key;
    /// first match wins, mirroring the writer's insertion order).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as u64 (`UInt`, non-negative `Int`, integral `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            Json::Float(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Object view (insertion-ordered key/value pairs).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Parse a JSON document (the inverse of [`Display`]/[`Json::pretty`]).
    ///
    /// A strict recursive-descent parser over everything this crate's
    /// writer emits — plus standard escapes (`\uXXXX` incl. surrogate
    /// pairs) and scientific-notation floats, so externally produced
    /// `BENCH_*.json` files load too. Trailing garbage is an error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Render with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => out.push_str(&n.to_string()),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    out.push_str(&format!("{x}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind)
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                let (k, v) = &fields[i];
                write_escaped(out, k);
                out.push_str(": ");
                v.write(out, ind);
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..len {
        if i > 0 {
            out.push(',');
            if inner.is_none() {
                out.push(' ');
            }
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        item(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::UInt(n)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::UInt(n as u64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

/// A parse failure: byte offset + message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("unpaired surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe via str re-borrow).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let j = Json::obj()
            .field("name", "a \"quoted\" name\n")
            .field("count", 3u64)
            .field("items", vec![Json::UInt(1), Json::Bool(false), Json::Null]);
        assert_eq!(
            j.to_string(),
            r#"{"name": "a \"quoted\" name\n", "count": 3, "items": [1, false, null]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj().field("a", Json::obj().field("b", 1u64));
        assert_eq!(j.pretty(), "{\n  \"a\": {\n    \"b\": 1\n  }\n}");
    }

    #[test]
    fn control_chars_escaped() {
        let j = Json::Str("\u{1}".to_string());
        assert_eq!(j.to_string(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::obj()
            .field("name", "a \"quoted\" name\n\ttab")
            .field("count", 3u64)
            .field("neg", -5i64)
            .field("pi", 3.25f64)
            .field("flag", true)
            .field("nothing", Json::Null)
            .field("items", vec![Json::UInt(1), Json::Bool(false), Json::Null])
            .field("nested", Json::obj().field("k", "v"));
        for text in [doc.to_string(), doc.pretty()] {
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed, doc, "round-trip of {text}");
        }
    }

    #[test]
    fn parse_escapes_and_unicode() {
        let j = Json::parse(r#""\u0041\u00e9\ud83d\ude00\\\n""#).unwrap();
        assert_eq!(j.as_str(), Some("Aé😀\\\n"));
        // Raw UTF-8 passes through unescaped.
        let j = Json::parse("\"héllo\"").unwrap();
        assert_eq!(j.as_str(), Some("héllo"));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("4.5").unwrap(), Json::Float(4.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse(&("[".repeat(400) + &"]".repeat(400))).is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": {"b": [1, 2.5, "x"]}, "n": -1}"#).unwrap();
        let arr = doc
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("n").and_then(Json::as_u64), None);
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(-1.0));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_obj().map(<[_]>::len), Some(2));
    }
}
