//! Tests for the Fig. 1 nested-loop evaluator.

use crate::{PipelineError, PipelineEvaluator};
use gq_calculus::parse;
use gq_storage::{tuple, Database, Relation, Schema, Tuple};

/// A small university: students, lectures, attendance, enrollment.
fn uni_db() -> Database {
    let mut db = Database::new();
    db.add_relation(
        Relation::with_tuples(
            "student",
            Schema::new(vec!["name"]).unwrap(),
            vec![tuple!["ann"], tuple!["bob"], tuple!["eve"]],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        Relation::with_tuples(
            "lecture",
            Schema::new(vec!["name", "dept"]).unwrap(),
            vec![
                tuple!["db", "cs"],
                tuple!["os", "cs"],
                tuple!["alg", "math"],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        Relation::with_tuples(
            "attends",
            Schema::new(vec!["student", "lecture"]).unwrap(),
            vec![
                tuple!["ann", "db"],
                tuple!["ann", "os"],
                tuple!["bob", "db"],
                tuple!["eve", "alg"],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db.add_relation(
        Relation::with_tuples(
            "enrolled",
            Schema::new(vec!["student", "dept"]).unwrap(),
            vec![
                tuple!["ann", "math"],
                tuple!["bob", "cs"],
                tuple!["eve", "math"],
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

#[test]
fn closed_existential_true_and_false() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    assert!(ev
        .eval_closed(&parse("exists x. student(x) & attends(x,\"db\")").unwrap())
        .unwrap());
    assert!(!ev
        .eval_closed(&parse("exists x. student(x) & attends(x,\"nope\")").unwrap())
        .unwrap());
}

#[test]
fn fig1a_stops_at_first_witness() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // ann (the first student) already attends db: only one student tuple
    // needs to be read.
    ev.eval_closed(&parse("exists x. student(x) & attends(x,\"db\")").unwrap())
        .unwrap();
    let s = ev.stats();
    // ann (1 student tuple read) + attends(x,"db") is itself a range for
    // x, so it is enumerated as an inner producer: its scan stops at the
    // first matching tuple (ann,db) — 1 more read. 2 total, not 3+4.
    assert_eq!(s.base_tuples_read, 2, "stats: {s}");
}

#[test]
fn closed_universal_with_range() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // every student attends something
    assert!(ev
        .eval_closed(&parse("forall x. student(x) -> exists y. attends(x,y)").unwrap())
        .unwrap());
    // not every student attends db
    assert!(!ev
        .eval_closed(&parse("forall x. student(x) -> attends(x,\"db\")").unwrap())
        .unwrap());
}

#[test]
fn fig1b_stops_at_first_counterexample() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // ann fails immediately: attends(ann, alg) is false.
    assert!(!ev
        .eval_closed(&parse("forall x. student(x) -> attends(x,\"alg\")").unwrap())
        .unwrap());
    assert_eq!(ev.stats().base_tuples_read, 1);
}

#[test]
fn universal_negated_range() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // no student is named "zoe" — ∀x ¬(student(x) ∧ x = "zoe")
    assert!(ev
        .eval_closed(&parse("forall x. !(student(x) & x = \"zoe\")").unwrap())
        .unwrap());
    assert!(!ev
        .eval_closed(&parse("forall x. !(student(x) & x = \"ann\")").unwrap())
        .unwrap());
}

#[test]
fn open_query_collects_answers() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    let (vars, rel) = ev
        .eval_open(&parse("student(x) & attends(x,\"db\")").unwrap())
        .unwrap();
    assert_eq!(vars.len(), 1);
    assert_eq!(rel.sorted_tuples(), vec![tuple!["ann"], tuple!["bob"]]);
}

#[test]
fn open_query_with_negation() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // students not enrolled in cs
    let (_, rel) = ev
        .eval_open(&parse("student(x) & !enrolled(x,\"cs\")").unwrap())
        .unwrap();
    assert_eq!(rel.sorted_tuples(), vec![tuple!["ann"], tuple!["eve"]]);
}

#[test]
fn open_query_two_variables() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    let (vars, rel) = ev
        .eval_open(&parse("attends(x,y) & lecture(y,\"cs\")").unwrap())
        .unwrap();
    // vars in name order: x, y
    assert_eq!(vars[0].name(), "x");
    assert_eq!(
        rel.sorted_tuples(),
        vec![
            tuple!["ann", "db"],
            tuple!["ann", "os"],
            tuple!["bob", "db"]
        ]
    );
}

#[test]
fn open_disjunction_unions_answers() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    let (_, rel) = ev
        .eval_open(
            &parse("(student(x) & attends(x,\"alg\")) | (student(x) & attends(x,\"os\"))").unwrap(),
        )
        .unwrap();
    assert_eq!(rel.sorted_tuples(), vec![tuple!["ann"], tuple!["eve"]]);
}

#[test]
fn nested_quantifiers() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // is there a student attending all cs lectures?
    let q = parse("exists x. student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))").unwrap();
    assert!(ev.eval_closed(&q).unwrap());
    // is there a student attending all lectures (any dept)? no
    let q2 = parse("exists x. student(x) & (forall y,d. lecture(y,d) -> attends(x,y))").unwrap();
    assert!(!ev.eval_closed(&q2).unwrap());
}

#[test]
fn range_disjunction_enumerates_both_branches() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    let (_, rel) = ev
        .eval_open(&parse("(student(x) | enrolled(x,\"cs\")) & attends(x,\"db\")").unwrap())
        .unwrap();
    assert_eq!(rel.sorted_tuples(), vec![tuple!["ann"], tuple!["bob"]]);
}

#[test]
fn projection_range() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // x ranges over attendees: ∃y attends(x,y) is the range for x
    let (_, rel) = ev
        .eval_open(&parse("(exists y. attends(x,y)) & !enrolled(x,\"math\")").unwrap())
        .unwrap();
    assert_eq!(rel.sorted_tuples(), vec![tuple!["bob"]]);
}

#[test]
fn repeated_variable_in_atom() {
    let mut db = Database::new();
    db.add_relation(
        Relation::with_tuples(
            "edge",
            Schema::new(vec!["a", "b"]).unwrap(),
            vec![tuple![1, 1], tuple![1, 2], tuple![2, 2]],
        )
        .unwrap(),
    )
    .unwrap();
    let ev = PipelineEvaluator::new(&db);
    let (_, rel) = ev.eval_open(&parse("edge(x,x)").unwrap()).unwrap();
    assert_eq!(rel.sorted_tuples(), vec![tuple![1], tuple![2]]);
}

#[test]
fn comparisons_in_filters() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    let (vars, rel) = ev
        .eval_open(&parse("enrolled(x,d) & d != \"cs\"").unwrap())
        .unwrap();
    // answer variables come in name order: d, then x
    assert_eq!(vars[0].name(), "d");
    assert_eq!(
        rel.sorted_tuples(),
        vec![tuple!["math", "ann"], tuple!["math", "eve"]]
    );
}

#[test]
fn unrestricted_queries_rejected() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    // pure negation has no producer
    assert!(matches!(
        ev.eval_open(&parse("!student(x)").unwrap()),
        Err(PipelineError::Unrestricted(_))
    ));
    // ∀ without range shape
    assert!(matches!(
        ev.eval_closed(&parse("forall x. student(x)").unwrap()),
        Err(PipelineError::Unrestricted(_))
    ));
}

#[test]
fn unknown_relation_and_arity_errors() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    assert!(matches!(
        ev.eval_closed(&parse("exists x. ghost(x)").unwrap()),
        Err(PipelineError::UnknownRelation(_))
    ));
    assert!(matches!(
        ev.eval_closed(&parse("exists x,y. student(x,y)").unwrap()),
        Err(PipelineError::ArityMismatch { .. })
    ));
}

#[test]
fn closed_query_as_open_gives_nullary_relation() {
    let db = uni_db();
    let ev = PipelineEvaluator::new(&db);
    let (vars, rel) = ev
        .eval_open(&parse("exists x. student(x)").unwrap())
        .unwrap();
    assert!(vars.is_empty());
    assert_eq!(rel.len(), 1); // true → {()}
    assert_eq!(rel.sorted_tuples(), vec![Tuple::new(vec![])]);
}

/// §2.2's redundancy claim: evaluating the *prenex-ish* Q₁ form re-checks
/// ¬enrolled(x,cs) once per lecture, while the miniscope Q₂ form checks it
/// once per student. The probe counts must reflect that.
#[test]
fn miniscope_reduces_filter_evaluations() {
    let db = uni_db();
    let q1 = parse(
        "exists x. student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y) & !enrolled(x,\"cs\"))",
    )
    .unwrap();
    let q2 = parse(
        "exists x. student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y)) & !enrolled(x,\"cs\")",
    )
    .unwrap();
    let ev1 = PipelineEvaluator::new(&db);
    let r1 = ev1.eval_closed(&q1).unwrap();
    let ev2 = PipelineEvaluator::new(&db);
    let r2 = ev2.eval_closed(&q2).unwrap();
    // Both forms: "a student attending all cs lectures and not enrolled in
    // cs" — ann attends all cs lectures and is enrolled in math. (The two
    // forms agree here because cs lectures exist; see DESIGN.md on the
    // paper's loose equivalence claim.)
    assert!(r1 && r2);
    assert!(
        ev2.stats().probes <= ev1.stats().probes,
        "miniscope must not probe more: {} vs {}",
        ev2.stats().probes,
        ev1.stats().probes
    );
}
