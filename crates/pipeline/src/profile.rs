//! Per-quantifier-loop attribution for the Fig. 1 interpreter.
//!
//! The nested-loop baseline has no algebra plan to annotate; its
//! "operators" are the quantifier loops themselves. A [`LoopProfiler`]
//! builds a tree of loop frames as the interpreter runs: entering a
//! producer-atom loop opens (or re-enters) a frame keyed by the atom's
//! rendering under the current frame, each examined tuple counts one
//! iteration, and [`ExecStats`] deltas plus wall time are accumulated
//! inclusively per frame. Re-entries merge — an inner loop that runs once
//! per outer binding appears as one node whose iteration count is the
//! total across all re-runs, which is exactly the "inner subqueries are
//! re-evaluated per outer binding" effect the paper criticizes.
//!
//! Extraction ([`LoopProfiler::trace`]) converts inclusive figures to
//! exclusive ones (subtracting children), so totals over the tree match
//! the interpreter's flat [`ExecStats`].

use gq_algebra::ExecStats;
use gq_obs::PlanNodeTrace;
use std::cell::RefCell;

#[derive(Debug, Default)]
struct Frame {
    label: String,
    iterations: u64,
    rows_out: u64,
    inclusive: ExecStats,
    inclusive_ns: u64,
    children: Vec<usize>,
}

/// Accumulates the loop-frame tree of one Fig. 1 evaluation.
///
/// Single-threaded, like the interpreter. Attach with
/// [`PipelineEvaluator::with_profiler`](crate::PipelineEvaluator::with_profiler);
/// without a profiler the interpreter performs no timing syscalls.
#[derive(Debug, Default)]
pub struct LoopProfiler {
    frames: RefCell<Vec<Frame>>,
    stack: RefCell<Vec<usize>>,
}

impl LoopProfiler {
    /// Fresh profiler with a root frame for the whole evaluation.
    pub fn new() -> Self {
        let p = LoopProfiler::default();
        p.frames.borrow_mut().push(Frame {
            label: "fig1 interpreter".to_string(),
            ..Frame::default()
        });
        p.stack.borrow_mut().push(0);
        p
    }

    /// Enter (or re-enter) the child frame of the current frame with this
    /// label; returns its index for [`LoopProfiler::exit`].
    pub(crate) fn enter(&self, label: &str) -> usize {
        let mut frames = self.frames.borrow_mut();
        // The stack is seeded with the root frame in `new` and `exit`
        // never pops the last element, so index 0 is a safe fallback.
        let parent = self.stack.borrow().last().copied().unwrap_or(0);
        let existing = frames[parent]
            .children
            .iter()
            .copied()
            .find(|&c| frames[c].label == label);
        let idx = match existing {
            Some(idx) => idx,
            None => {
                let idx = frames.len();
                frames.push(Frame {
                    label: label.to_string(),
                    ..Frame::default()
                });
                frames[parent].children.push(idx);
                idx
            }
        };
        drop(frames);
        self.stack.borrow_mut().push(idx);
        idx
    }

    /// Close a frame opened by [`LoopProfiler::enter`], accumulating its
    /// inclusive stats delta and wall time.
    pub(crate) fn exit(&self, idx: usize, delta: &ExecStats, ns: u64) {
        let popped = self.stack.borrow_mut().pop();
        debug_assert_eq!(popped, Some(idx), "unbalanced loop frames");
        let mut frames = self.frames.borrow_mut();
        frames[idx].inclusive.merge(delta);
        frames[idx].inclusive_ns += ns;
    }

    /// Count one loop iteration (tuple examined) on an open frame.
    pub(crate) fn iteration(&self, idx: usize) {
        self.frames.borrow_mut()[idx].iterations += 1;
    }

    /// Accumulate the root's inclusive figures and emitted-row count
    /// (the root has no enter/exit bracket — the evaluator brackets the
    /// whole entry point).
    pub(crate) fn finish_root(&self, delta: &ExecStats, ns: u64, rows: u64) {
        let mut frames = self.frames.borrow_mut();
        frames[0].inclusive.merge(delta);
        frames[0].inclusive_ns += ns;
        frames[0].rows_out += rows;
    }

    /// Extract the loop tree with *exclusive* per-node figures, so
    /// [`PlanNodeTrace::totals`] equals the interpreter's flat stats.
    pub fn trace(&self) -> PlanNodeTrace {
        self.node(0)
    }

    fn node(&self, idx: usize) -> PlanNodeTrace {
        let frames = self.frames.borrow();
        let f = &frames[idx];
        let mut t = PlanNodeTrace::new(f.label.clone());
        t.iterations = f.iterations;
        t.rows_out = f.rows_out;
        let mut child_stats = ExecStats::new();
        let mut child_ns = 0u64;
        let children = f.children.clone();
        let own = f.inclusive.clone();
        let own_ns = f.inclusive_ns;
        drop(frames);
        for c in children {
            let ct = self.node(c);
            let frames = self.frames.borrow();
            child_stats.merge(&frames[c].inclusive);
            child_ns += frames[c].inclusive_ns;
            drop(frames);
            t.children.push(ct);
        }
        t.base_reads = own
            .base_tuples_read
            .saturating_sub(child_stats.base_tuples_read) as u64;
        t.comparisons = own.comparisons.saturating_sub(child_stats.comparisons) as u64;
        t.probes = own.probes.saturating_sub(child_stats.probes) as u64;
        t.elapsed_ns = own_ns.saturating_sub(child_ns);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_merge_on_reentry() {
        let p = LoopProfiler::new();
        for _ in 0..3 {
            let f = p.enter("loop member(x)");
            p.iteration(f);
            p.iteration(f);
            let mut d = ExecStats::new();
            d.base_tuples_read = 2;
            p.exit(f, &d, 10);
        }
        let mut root_delta = ExecStats::new();
        root_delta.base_tuples_read = 6;
        root_delta.comparisons = 4;
        p.finish_root(&root_delta, 100, 1);
        let t = p.trace();
        assert_eq!(t.children.len(), 1, "re-entries merged into one frame");
        assert_eq!(t.children[0].iterations, 6);
        assert_eq!(t.children[0].base_reads, 6);
        assert_eq!(t.comparisons, 4);
        assert_eq!(t.base_reads, 0, "child reads excluded from root");
        assert_eq!(t.totals().base_reads, 6);
        assert_eq!(t.totals().elapsed_ns, 100);
    }

    #[test]
    fn nested_frames_nest_in_trace() {
        let p = LoopProfiler::new();
        let outer = p.enter("loop p(x)");
        let inner = p.enter("loop q(x, y)");
        p.iteration(inner);
        p.exit(inner, &ExecStats::new(), 5);
        p.iteration(outer);
        p.exit(outer, &ExecStats::new(), 20);
        p.finish_root(&ExecStats::new(), 30, 0);
        let t = p.trace();
        assert_eq!(t.children[0].label, "loop p(x)");
        assert_eq!(t.children[0].children[0].label, "loop q(x, y)");
        assert_eq!(t.children[0].children[0].elapsed_ns, 5);
        assert_eq!(t.children[0].elapsed_ns, 15);
        assert_eq!(t.elapsed_ns, 10);
    }
}
