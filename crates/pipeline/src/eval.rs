//! The nested-loop evaluator of Figure 1.
//!
//! A direct one-tuple-at-a-time interpreter of calculus queries:
//!
//! * closed existential queries — Fig. 1(a): loop over the range, stop at
//!   the first binding satisfying the rest;
//! * closed universal queries — Fig. 1(b): loop over the range, stop at the
//!   first counterexample;
//! * open queries — Fig. 1(c): loop over the range, collect the bindings
//!   satisfying the rest.
//!
//! "The algorithms of Fig. 1 process multiple quantifications with nested
//! loop programs, the loop nesting reflecting the quantifier nesting. All
//! operations are pipelined and performed one tuple at a time." This is the
//! baseline the paper's algebraic method is measured against. (The
//! algebraic evaluator has since grown its own pipelining — push-based
//! morsel batches that materialize only at breakers, DESIGN.md §14 — so
//! the contest is no longer "pipelined loops vs full materialization"
//! but loop nesting vs set-oriented batch kernels, which is the paper's
//! actual claim.)
//!
//! Instrumentation conventions (deliberately *generous* to the baseline —
//! see DESIGN.md): producer scans count one `base_tuples_read` per tuple
//! examined; ground membership tests are index-based (one probe + one
//! comparison) rather than linear scans. The baseline's inefficiency comes
//! from re-evaluating inner subqueries once per outer binding — exactly the
//! effect the paper targets — not from an artificially dumb storage layer.

use crate::profile::LoopProfiler;
use crate::PipelineError;
use gq_algebra::ExecStats;
use gq_calculus::{split_producer_filter, Comparison, Formula, Term, Var};
use gq_storage::{Database, Relation, Tuple, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Instant;

/// A variable binding environment.
pub type Env = BTreeMap<Var, Value>;

/// The Fig. 1 evaluator.
pub struct PipelineEvaluator<'db> {
    db: &'db Database,
    stats: RefCell<ExecStats>,
    /// Per-quantifier-loop attribution; `None` (the default) keeps the
    /// interpreter free of snapshots and timing syscalls.
    profiler: Option<Rc<LoopProfiler>>,
    /// Resource governor: cancellation/deadline polled every
    /// [`gq_governor::DEFAULT_CHECK_INTERVAL`] producer-scan tuples.
    governor: Option<gq_governor::Governor>,
}

/// An open profiling window: stats snapshot + start time.
type ProfWindow = (ExecStats, Instant);

/// Iteration control: keep looping or stop early (answer decided).
enum Flow {
    Continue,
    Stop,
}

impl<'db> PipelineEvaluator<'db> {
    /// Create an evaluator over a database.
    pub fn new(db: &'db Database) -> Self {
        PipelineEvaluator {
            db,
            stats: RefCell::new(ExecStats::new()),
            profiler: None,
            governor: None,
        }
    }

    /// Attach a loop profiler: every producer-atom loop becomes a frame
    /// accumulating iteration counts, stats deltas and wall time (see
    /// [`LoopProfiler`]).
    pub fn with_profiler(mut self, profiler: Rc<LoopProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Attach a resource governor: the innermost producer-scan loops poll
    /// cancellation and the deadline every
    /// [`gq_governor::DEFAULT_CHECK_INTERVAL`] tuples examined, so even a
    /// deeply nested loop program unwinds within one check interval.
    pub fn with_governor(mut self, governor: gq_governor::Governor) -> Self {
        self.governor = Some(governor);
        self
    }

    /// Open a profiling window (`None` when no profiler is attached, so
    /// the unprofiled path takes no stats snapshot and no timestamp).
    fn window(&self) -> Option<ProfWindow> {
        self.profiler
            .as_ref()
            .map(|_| (self.stats.borrow().clone(), Instant::now()))
    }

    /// Close a window, returning the stats delta and elapsed nanoseconds.
    fn close_window(&self, w: ProfWindow) -> (ExecStats, u64) {
        let (before, start) = w;
        let ns = start.elapsed().as_nanos() as u64;
        (self.stats.borrow().diff(&before), ns)
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> ExecStats {
        self.stats.borrow().clone()
    }

    /// Reset the statistics.
    pub fn reset_stats(&self) {
        *self.stats.borrow_mut() = ExecStats::new();
    }

    /// Evaluate a closed (yes/no) query — Fig. 1(a)/(b) at the top level.
    pub fn eval_closed(&self, f: &Formula) -> Result<bool, PipelineError> {
        let free = f.free_vars();
        if let Some(v) = free.iter().next() {
            return Err(PipelineError::UnboundVariable {
                var: v.name().to_string(),
                context: f.to_string(),
            });
        }
        let mut env = Env::new();
        let w = self.window();
        let result = self.eval(f, &mut env);
        if let (Some(p), Some(w)) = (&self.profiler, w) {
            let (delta, ns) = self.close_window(w);
            p.finish_root(&delta, ns, matches!(result, Ok(true)) as u64);
        }
        result
    }

    /// Evaluate an open query — Fig. 1(c). Returns the answer variables in
    /// name order and the relation of their bindings.
    pub fn eval_open(&self, f: &Formula) -> Result<(Vec<Var>, Relation), PipelineError> {
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        if free.is_empty() {
            // Degenerate: a closed query yields the 0-ary relation
            // ({()} for true, {} for false).
            // Inserting the empty tuple into a fresh 0-ary relation cannot
            // collide or mismatch arity, so the result is ignorable.
            let mut rel = Relation::intermediate(0);
            if self.eval_closed(f)? {
                let _ = rel.insert(Tuple::new(vec![]));
            }
            return Ok((free, rel));
        }
        let mut rel = Relation::intermediate(free.len());
        let mut env = Env::new();
        let w = self.window();
        let result = self.collect_open(f, &free, &mut env, &mut rel);
        if let (Some(p), Some(w)) = (&self.profiler, w) {
            let (delta, ns) = self.close_window(w);
            p.finish_root(&delta, ns, rel.len() as u64);
        }
        result?;
        self.stats.borrow_mut().tuples_emitted += rel.len();
        Ok((free, rel))
    }

    fn collect_open(
        &self,
        f: &Formula,
        free: &[Var],
        env: &mut Env,
        out: &mut Relation,
    ) -> Result<(), PipelineError> {
        // Definition 3 case 2: a disjunction of open formulas over the same
        // variables — evaluate both sides into the same set.
        if let Formula::Or(a, b) = f {
            if !a.free_vars().is_empty() {
                self.collect_open(a, free, env, out)?;
                self.collect_open(b, free, env, out)?;
                return Ok(());
            }
        }
        let target: BTreeSet<Var> = free.iter().cloned().collect();
        let outer: BTreeSet<Var> = env.keys().cloned().collect();
        let Some(pf) = split_producer_filter(f, &target, &outer) else {
            return Err(PipelineError::Unrestricted(f.to_string()));
        };
        let producers: Vec<&Formula> = pf.producers.iter().collect();
        self.iterate(&producers, env, &mut |this, env| {
            for filt in &pf.filters {
                if !this.eval(filt, env)? {
                    return Ok(Flow::Continue);
                }
            }
            // Every free variable is a produced target here (the split
            // guarantees coverage); a gap would silently drop the binding,
            // so report it as an evaluation error instead of panicking.
            let mut tuple = Vec::with_capacity(free.len());
            for v in free {
                match env.get(v) {
                    Some(val) => tuple.push(val.clone()),
                    None => {
                        return Err(PipelineError::Unrestricted(format!(
                            "variable {v} not bound by its producers"
                        )))
                    }
                }
            }
            let _ = out.insert(Tuple::new(tuple));
            Ok(Flow::Continue)
        })?;
        Ok(())
    }

    /// Evaluate a formula that is closed under `env`.
    fn eval(&self, f: &Formula, env: &mut Env) -> Result<bool, PipelineError> {
        match f {
            Formula::Atom(_) => self.ground_atom(f, env),
            Formula::Compare(c) => self.compare(c, env),
            Formula::Not(g) => Ok(!self.eval(g, env)?),
            Formula::And(a, b) => Ok(self.eval(a, env)? && self.eval(b, env)?),
            Formula::Or(a, b) => Ok(self.eval(a, env)? || self.eval(b, env)?),
            Formula::Implies(a, b) => Ok(!self.eval(a, env)? || self.eval(b, env)?),
            Formula::Iff(a, b) => Ok(self.eval(a, env)? == self.eval(b, env)?),
            // Fig. 1(a): value := false; loop while value ≠ true.
            Formula::Exists(vs, body) => {
                let target: BTreeSet<Var> = vs.iter().cloned().collect();
                let outer: BTreeSet<Var> = env.keys().cloned().collect();
                let Some(pf) = split_producer_filter(body, &target, &outer) else {
                    return Err(PipelineError::Unrestricted(f.to_string()));
                };
                let producers: Vec<&Formula> = pf.producers.iter().collect();
                let mut value = false;
                self.iterate(&producers, env, &mut |this, env| {
                    let mut ok = true;
                    for filt in &pf.filters {
                        if !this.eval(filt, env)? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        value = true;
                        Ok(Flow::Stop)
                    } else {
                        Ok(Flow::Continue)
                    }
                })?;
                Ok(value)
            }
            // Fig. 1(b): value := true; loop while value ≠ false.
            Formula::Forall(vs, body) => {
                let target: BTreeSet<Var> = vs.iter().cloned().collect();
                let outer: BTreeSet<Var> = env.keys().cloned().collect();
                match &**body {
                    // ∀x̄ ¬R: true iff R has no binding.
                    Formula::Not(r) => {
                        let Some(pf) = split_producer_filter(r, &target, &outer) else {
                            return Err(PipelineError::Unrestricted(f.to_string()));
                        };
                        let producers: Vec<&Formula> = pf.producers.iter().collect();
                        let mut value = true;
                        self.iterate(&producers, env, &mut |this, env| {
                            for filt in &pf.filters {
                                if !this.eval(filt, env)? {
                                    return Ok(Flow::Continue);
                                }
                            }
                            value = false;
                            Ok(Flow::Stop)
                        })?;
                        Ok(value)
                    }
                    // ∀x̄ R ⇒ F: loop over R, stop at first F-counterexample.
                    Formula::Implies(r, inner) => {
                        let Some(pf) = split_producer_filter(r, &target, &outer) else {
                            return Err(PipelineError::Unrestricted(f.to_string()));
                        };
                        let producers: Vec<&Formula> = pf.producers.iter().collect();
                        let mut value = true;
                        self.iterate(&producers, env, &mut |this, env| {
                            for filt in &pf.filters {
                                if !this.eval(filt, env)? {
                                    return Ok(Flow::Continue);
                                }
                            }
                            if this.eval(inner, env)? {
                                Ok(Flow::Continue)
                            } else {
                                value = false;
                                Ok(Flow::Stop)
                            }
                        })?;
                        Ok(value)
                    }
                    _ => Err(PipelineError::Unrestricted(f.to_string())),
                }
            }
        }
    }

    /// Enumerate the bindings of a producer list by nested loops,
    /// calling `cb` for each complete binding. Bindings added at each level
    /// are undone on the way out.
    fn iterate(
        &self,
        producers: &[&Formula],
        env: &mut Env,
        cb: &mut dyn FnMut(&Self, &mut Env) -> Result<Flow, PipelineError>,
    ) -> Result<Flow, PipelineError> {
        let Some((first, rest)) = producers.split_first() else {
            return cb(self, env);
        };
        match first {
            Formula::Atom(a) => {
                // One profiler frame per loop site: re-entries (one run per
                // enclosing binding) merge, accumulating iterations.
                let frame = self
                    .profiler
                    .as_ref()
                    .map(|p| (Rc::clone(p), p.enter(&format!("loop {first}"))));
                let w = self.window();
                let result = (|| {
                    let rel = self
                        .db
                        .relation(&a.relation)
                        .map_err(|_| PipelineError::UnknownRelation(a.relation.clone()))?;
                    if rel.arity() != a.arity() {
                        return Err(PipelineError::ArityMismatch {
                            relation: a.relation.clone(),
                            expected: rel.arity(),
                            actual: a.arity(),
                        });
                    }
                    self.stats.borrow_mut().base_scans += 1;
                    for (ti, t) in rel.iter().enumerate() {
                        if let Some(g) = &self.governor {
                            if ti % gq_governor::DEFAULT_CHECK_INTERVAL == 0 {
                                g.check("evaluate")?;
                            }
                        }
                        self.stats.borrow_mut().base_tuples_read += 1;
                        if let Some((p, idx)) = &frame {
                            p.iteration(*idx);
                        }
                        let mut bound_here: Vec<Var> = Vec::new();
                        if self.match_atom(&a.terms, t, env, &mut bound_here) {
                            let flow = self.iterate(rest, env, cb)?;
                            for v in &bound_here {
                                env.remove(v);
                            }
                            if matches!(flow, Flow::Stop) {
                                return Ok(Flow::Stop);
                            }
                        } else {
                            for v in &bound_here {
                                env.remove(v);
                            }
                        }
                    }
                    Ok(Flow::Continue)
                })();
                if let (Some((p, idx)), Some(w)) = (frame, w) {
                    let (delta, ns) = self.close_window(w);
                    p.exit(idx, &delta, ns);
                }
                result
            }
            Formula::And(x, y) => {
                // A composite range (Definition 1 conditions 2/4): enumerate
                // its own producers first, with its filters as guards, then
                // the remaining outer producers. Re-splitting here orders
                // sub-producers before sub-filters regardless of the
                // syntactic order (`F ∧ R` is accepted as well as `R ∧ F`).
                let outer: BTreeSet<Var> = env.keys().cloned().collect();
                let vars: BTreeSet<Var> = first.free_vars().difference(&outer).cloned().collect();
                let pf = split_producer_filter(first, &vars, &outer);
                match &pf {
                    Some(pf) => {
                        let mut inner: Vec<&Formula> = pf.producers.iter().collect();
                        inner.extend(pf.filters.iter());
                        inner.extend_from_slice(rest);
                        self.iterate(&inner, env, cb)
                    }
                    None => {
                        let mut inner: Vec<&Formula> = vec![x, y];
                        inner.extend_from_slice(rest);
                        self.iterate(&inner, env, cb)
                    }
                }
            }
            Formula::Or(x, y) => {
                // Range disjunction: both branches enumerated (duplicates
                // are deduplicated by the consumer's set semantics).
                let mut left: Vec<&Formula> = vec![x];
                left.extend_from_slice(rest);
                if matches!(self.iterate(&left, env, cb)?, Flow::Stop) {
                    return Ok(Flow::Stop);
                }
                let mut right: Vec<&Formula> = vec![y];
                right.extend_from_slice(rest);
                self.iterate(&right, env, cb)
            }
            Formula::Exists(_, r) => {
                // Projection range (Definition 1 condition 5): enumerate the
                // wider range; the extra variables are scoped to this level.
                let mut inner: Vec<&Formula> = vec![r];
                inner.extend_from_slice(rest);
                let before: BTreeSet<Var> = env.keys().cloned().collect();
                let flow = self.iterate(&inner, env, cb)?;
                let added: Vec<Var> = env
                    .keys()
                    .filter(|k| !before.contains(*k))
                    .cloned()
                    .collect();
                for v in added {
                    env.remove(&v);
                }
                Ok(flow)
            }
            // A non-range conjunct in producer position acts as a filter
            // guard at this nesting level.
            other => {
                if self.eval(other, env)? {
                    self.iterate(rest, env, cb)
                } else {
                    Ok(Flow::Continue)
                }
            }
        }
    }

    /// Try to match atom terms against a stored tuple, binding unbound
    /// variables into `env` (recorded in `bound_here` for undo).
    fn match_atom(
        &self,
        terms: &[Term],
        tuple: &Tuple,
        env: &mut Env,
        bound_here: &mut Vec<Var>,
    ) -> bool {
        for (i, term) in terms.iter().enumerate() {
            let actual = &tuple[i];
            match term {
                Term::Const(c) => {
                    self.stats.borrow_mut().comparisons += 1;
                    if c != actual {
                        return false;
                    }
                }
                Term::Var(v) => match env.get(v) {
                    Some(bound) => {
                        self.stats.borrow_mut().comparisons += 1;
                        if bound != actual {
                            return false;
                        }
                    }
                    None => {
                        env.insert(v.clone(), actual.clone());
                        bound_here.push(v.clone());
                    }
                },
            }
        }
        true
    }

    /// Ground atom membership test (index-based; see module docs).
    fn ground_atom(&self, f: &Formula, env: &Env) -> Result<bool, PipelineError> {
        let Formula::Atom(a) = f else { unreachable!() };
        let rel = self
            .db
            .relation(&a.relation)
            .map_err(|_| PipelineError::UnknownRelation(a.relation.clone()))?;
        if rel.arity() != a.arity() {
            return Err(PipelineError::ArityMismatch {
                relation: a.relation.clone(),
                expected: rel.arity(),
                actual: a.arity(),
            });
        }
        let mut values = Vec::with_capacity(a.terms.len());
        for t in &a.terms {
            match t {
                Term::Const(c) => values.push(c.clone()),
                Term::Var(v) => match env.get(v) {
                    Some(val) => values.push(val.clone()),
                    None => {
                        return Err(PipelineError::UnboundVariable {
                            var: v.name().to_string(),
                            context: f.to_string(),
                        })
                    }
                },
            }
        }
        let mut s = self.stats.borrow_mut();
        s.probes += 1;
        s.comparisons += 1;
        Ok(rel.contains(&Tuple::new(values)))
    }

    fn compare(&self, c: &Comparison, env: &Env) -> Result<bool, PipelineError> {
        let value_of = |t: &Term| -> Result<Value, PipelineError> {
            match t {
                Term::Const(v) => Ok(v.clone()),
                Term::Var(v) => env
                    .get(v)
                    .cloned()
                    .ok_or_else(|| PipelineError::UnboundVariable {
                        var: v.name().to_string(),
                        context: c.to_string(),
                    }),
            }
        };
        let l = value_of(&c.left)?;
        let r = value_of(&c.right)?;
        self.stats.borrow_mut().comparisons += 1;
        Ok(c.op.eval(&l, &r))
    }
}
