//! # gq-pipeline — the Fig. 1 nested-loop baseline
//!
//! A one-tuple-at-a-time interpreter of calculus queries implementing the
//! loop algorithms of the paper's Figure 1: closed existential queries
//! (1a), closed universal queries (1b) and open quantified queries (1c).
//!
//! The paper credits this strategy with two attractive properties — each
//! range relation is searched only once per enclosing binding, and no more
//! tuples are accessed than necessary — but criticizes its one-tuple-at-a-
//! time control, which re-evaluates inner subqueries for every outer
//! binding and requires all relations of a quantifier scope to be accessed
//! simultaneously. The experiments compare it against the improved
//! algebraic translation on exactly these counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod error;
mod eval;
mod profile;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod eval_tests;

pub use error::PipelineError;
pub use eval::{Env, PipelineEvaluator};
pub use profile::LoopProfiler;
