//! Pipeline-evaluator errors.

use std::fmt;

/// Errors raised by the nested-loop (Fig. 1) evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// An atom references a relation missing from the catalog.
    UnknownRelation(String),
    /// An atom's arity differs from the stored relation's.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Stored arity.
        expected: usize,
        /// Atom arity.
        actual: usize,
    },
    /// A quantification or free variable has no covering range — the loop
    /// algorithms cannot enumerate its bindings.
    Unrestricted(String),
    /// A subformula was evaluated with an unbound variable where a ground
    /// value was required (negations, comparisons, universal bodies).
    UnboundVariable {
        /// The variable.
        var: String,
        /// Rendering of the subformula.
        context: String,
    },
    /// The resource governor interrupted the nested-loop evaluation
    /// (cancellation or deadline).
    Governor(gq_governor::GovernorError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            PipelineError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has arity {actual}, relation has {expected}"
            ),
            PipelineError::Unrestricted(s) => {
                write!(f, "no range covers the variables of `{s}`")
            }
            PipelineError::UnboundVariable { var, context } => {
                write!(f, "variable `{var}` unbound in `{context}`")
            }
            PipelineError::Governor(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<gq_governor::GovernorError> for PipelineError {
    fn from(e: gq_governor::GovernorError) -> Self {
        PipelineError::Governor(e)
    }
}
