//! Randomized query fuzzing: generate arbitrary *restricted* queries
//! (Definitions 2–3 by construction) over a fixed schema and check that
//! the improved translation, the classical translation and the
//! nested-loop interpreter agree on random databases.
//!
//! This extends the fixed query pool of `equivalence_tests` to a
//! combinatorially larger space: nested quantifiers, mixed negation,
//! disjunctive filters and producers, comparisons, and ∀-forms, composed
//! recursively.

use crate::{ClassicalTranslator, ImprovedTranslator};
use gq_algebra::Evaluator;
use gq_calculus::{CompareOp, Formula, Term, Var};
use gq_pipeline::PipelineEvaluator;
use gq_rewrite::canonicalize;
use gq_storage::{Database, Schema, Tuple, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fuzzing schema: unary `p`, `q`; binary `r`, `s`.
fn schema_atoms() -> Vec<(&'static str, usize)> {
    vec![("p", 1), ("q", 1), ("r", 2), ("s", 2)]
}

fn random_db(rng: &mut StdRng, scale: usize) -> Database {
    let mut db = Database::new();
    let n = scale.max(2) as i64;
    for (name, arity) in schema_atoms() {
        db.create_relation(name, Schema::anonymous(arity)).unwrap();
        for _ in 0..scale * arity {
            let t: Tuple = (0..arity)
                .map(|_| Value::Int(rng.gen_range(0..n)))
                .collect();
            let _ = db.insert(name, t);
        }
    }
    db
}

/// An atom over `vars` (every listed variable used at least once; the
/// remaining positions filled with constants or repeats).
fn gen_atom(rng: &mut StdRng, vars: &[Var], scale: usize) -> Formula {
    // pick a relation with arity ≥ vars.len()
    let candidates: Vec<(&str, usize)> = schema_atoms()
        .into_iter()
        .filter(|&(_, a)| a >= vars.len())
        .collect();
    let (name, arity) = candidates[rng.gen_range(0..candidates.len())];
    let mut terms: Vec<Option<Term>> = vec![None; arity];
    // place each required var once
    let mut free_slots: Vec<usize> = (0..arity).collect();
    for v in vars {
        let i = free_slots.remove(rng.gen_range(0..free_slots.len()));
        terms[i] = Some(Term::Var(v.clone()));
    }
    for slot in free_slots {
        terms[slot] = Some(if rng.gen_bool(0.5) && !vars.is_empty() {
            Term::Var(vars[rng.gen_range(0..vars.len())].clone())
        } else {
            Term::constant(rng.gen_range(0..scale.max(2) as i64))
        });
    }
    Formula::atom(name, terms.into_iter().map(Option::unwrap).collect())
}

/// A filter formula over (a subset of) `avail`, with recursion budget
/// `depth`. Filters may be atoms, negated atoms, comparisons, quantified
/// subqueries (∃/∀ with fresh inner variables), or disjunctions of the
/// above.
fn gen_filter(
    rng: &mut StdRng,
    avail: &[Var],
    depth: usize,
    fresh: &mut usize,
    scale: usize,
) -> Formula {
    let v = avail[rng.gen_range(0..avail.len())].clone();
    let choice = if depth == 0 {
        rng.gen_range(0..4)
    } else {
        rng.gen_range(0..7)
    };
    match choice {
        0 => gen_atom(rng, &[v], scale),
        1 => Formula::not(gen_atom(rng, &[v], scale)),
        2 => Formula::compare(
            Term::Var(v),
            if rng.gen_bool(0.5) {
                CompareOp::Ne
            } else {
                CompareOp::Lt
            },
            Term::constant(rng.gen_range(0..scale.max(2) as i64)),
        ),
        3 => {
            // small disjunction of simple tests over the same variable
            let k = rng.gen_range(2..4);
            let parts: Vec<Formula> = (0..k)
                .map(|_| {
                    let a = gen_atom(rng, std::slice::from_ref(&v), scale);
                    if rng.gen_bool(0.3) {
                        Formula::not(a)
                    } else {
                        a
                    }
                })
                .collect();
            Formula::or_all(parts)
        }
        4 => {
            // ∃ subquery: ∃z producer(v,z) ∧ [filter]
            let z = Var::new(format!("z{}", *fresh));
            *fresh += 1;
            let producer = gen_atom(rng, &[v.clone(), z.clone()], scale);
            let body = if rng.gen_bool(0.6) {
                let inner = gen_filter(rng, &[v, z.clone()], depth - 1, fresh, scale);
                Formula::and(producer, inner)
            } else {
                producer
            };
            Formula::exists(vec![z], body)
        }
        5 => {
            // ¬∃ subquery
            let z = Var::new(format!("z{}", *fresh));
            *fresh += 1;
            let producer = gen_atom(rng, &[v.clone(), z.clone()], scale);
            let inner = gen_filter(rng, &[v, z.clone()], depth - 1, fresh, scale);
            Formula::not(Formula::exists(vec![z], Formula::and(producer, inner)))
        }
        _ => {
            // ∀ subquery: ∀z range(z) ⇒ test(v,z)
            let z = Var::new(format!("z{}", *fresh));
            *fresh += 1;
            let range = gen_atom(rng, std::slice::from_ref(&z), scale);
            let test = gen_atom(rng, &[v, z.clone()], scale);
            Formula::forall(vec![z], Formula::implies(range, test))
        }
    }
}

/// A restricted open query over one or two free variables.
pub fn gen_query(seed: u64, scale: usize) -> (Formula, Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let db = random_db(&mut rng, scale);
    let mut fresh = 0usize;
    let x = Var::new("x");
    let two_vars = rng.gen_bool(0.4);
    let (vars, producer) = if two_vars {
        let y = Var::new("y");
        let p = gen_atom(&mut rng, &[x.clone(), y.clone()], scale);
        (vec![x, y], p)
    } else {
        let p = gen_atom(&mut rng, std::slice::from_ref(&x), scale);
        (vec![x], p)
    };
    let mut f = producer;
    let n_filters = rng.gen_range(0..3);
    for _ in 0..n_filters {
        let filt = gen_filter(&mut rng, &vars, 2, &mut fresh, scale);
        f = Formula::and(f, filt);
    }
    // Occasionally close the query.
    if rng.gen_bool(0.3) {
        f = Formula::exists(vars, f);
        if rng.gen_bool(0.5) {
            f = Formula::not(f);
        }
    }
    (f, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(seed: u64) {
        let (f, db) = gen_query(seed, 8);
        let canonical = match canonicalize(&f) {
            Ok(c) => c,
            Err(e) => panic!("canonicalize failed on seed {seed}: {e}\n{f}"),
        };
        if f.is_closed() {
            let imp = ImprovedTranslator::new(&db)
                .translate_closed(&canonical)
                .unwrap_or_else(|e| panic!("improved seed {seed}: {e}\n{f}\n{canonical}"))
                .eval(&Evaluator::new(&db))
                .unwrap();
            let cls = ClassicalTranslator::new(&db)
                .translate_closed(&f)
                .unwrap_or_else(|e| panic!("classical seed {seed}: {e}\n{f}"))
                .eval(&Evaluator::new(&db))
                .unwrap();
            let nl = PipelineEvaluator::new(&db)
                .eval_closed(&canonical)
                .unwrap_or_else(|e| panic!("pipeline seed {seed}: {e}\n{canonical}"));
            assert_eq!(
                imp, cls,
                "seed {seed}: improved vs classical\n{f}\n{canonical}"
            );
            assert_eq!(
                imp, nl,
                "seed {seed}: improved vs nested-loop\n{f}\n{canonical}"
            );
        } else {
            let (_, plan) = ImprovedTranslator::new(&db)
                .translate_open(&canonical)
                .unwrap_or_else(|e| panic!("improved seed {seed}: {e}\n{f}\n{canonical}"));
            let imp = Evaluator::new(&db).eval(&plan).unwrap();
            let (_, cplan) = ClassicalTranslator::new(&db)
                .translate_open(&f)
                .unwrap_or_else(|e| panic!("classical seed {seed}: {e}\n{f}"));
            let cls = Evaluator::new(&db).eval(&cplan).unwrap();
            let (_, nl) = PipelineEvaluator::new(&db)
                .eval_open(&canonical)
                .unwrap_or_else(|e| panic!("pipeline seed {seed}: {e}\n{canonical}"));
            assert!(
                imp.set_eq(&cls),
                "seed {seed}: improved vs classical\n{f}\n{canonical}\nplan: {plan}\nimp: {imp}\ncls: {cls}"
            );
            assert!(
                imp.set_eq(&nl),
                "seed {seed}: improved vs nested-loop\n{f}\n{canonical}\nplan: {plan}\nimp: {imp}\nnl: {nl}"
            );
        }
    }

    #[test]
    fn fuzz_batch_1() {
        for seed in 0..120 {
            check(seed);
        }
    }

    #[test]
    fn fuzz_batch_2() {
        for seed in 1000..1120 {
            check(seed);
        }
    }

    #[test]
    fn fuzz_batch_3_larger_db() {
        for seed in 2000..2060 {
            let (f, db) = gen_query(seed, 15);
            let canonical = canonicalize(&f).unwrap();
            // improved vs nested-loop only (classical explodes at scale)
            if f.is_closed() {
                let imp = ImprovedTranslator::new(&db)
                    .translate_closed(&canonical)
                    .unwrap()
                    .eval(&Evaluator::new(&db))
                    .unwrap();
                let nl = PipelineEvaluator::new(&db).eval_closed(&canonical).unwrap();
                assert_eq!(imp, nl, "seed {seed}\n{canonical}");
            } else {
                let (_, plan) = ImprovedTranslator::new(&db)
                    .translate_open(&canonical)
                    .unwrap();
                let imp = Evaluator::new(&db).eval(&plan).unwrap();
                let (_, nl) = PipelineEvaluator::new(&db).eval_open(&canonical).unwrap();
                assert!(imp.set_eq(&nl), "seed {seed}\n{canonical}\nplan: {plan}");
            }
        }
    }
}
