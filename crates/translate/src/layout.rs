//! Column layouts: tracking which variable each column of an intermediate
//! algebra expression holds.
//!
//! The paper's algebra is positional; the translator threads a [`Layout`]
//! (column → variable) alongside every expression it builds, so joins,
//! semi-joins and projections can be expressed by variable name and
//! resolved to positions.

use gq_calculus::Var;
use std::fmt;

/// The variables carried by the columns of an intermediate result, in
/// column order. A variable may appear in several columns after a join;
/// [`Layout::position_of`] returns the first.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Layout {
    columns: Vec<Var>,
}

impl Layout {
    /// Layout with the given columns.
    pub fn new(columns: Vec<Var>) -> Self {
        Layout { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column variables in order.
    pub fn columns(&self) -> &[Var] {
        &self.columns
    }

    /// First column holding `v`.
    pub fn position_of(&self, v: &Var) -> Option<usize> {
        self.columns.iter().position(|c| c == v)
    }

    /// Does the layout carry `v`?
    pub fn contains(&self, v: &Var) -> bool {
        self.position_of(v).is_some()
    }

    /// Do all of `vars` appear?
    pub fn contains_all<'a>(&self, vars: impl IntoIterator<Item = &'a Var>) -> bool {
        vars.into_iter().all(|v| self.contains(v))
    }

    /// Positions of `vars` (first occurrence each); `None` if any missing.
    pub fn positions_of<'a>(&self, vars: impl IntoIterator<Item = &'a Var>) -> Option<Vec<usize>> {
        vars.into_iter().map(|v| self.position_of(v)).collect()
    }

    /// The layout after concatenating another layout's columns (join,
    /// product).
    pub fn concat(&self, other: &Layout) -> Layout {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Layout { columns }
    }

    /// The layout after projecting onto `vars` in the given order.
    pub fn project(&self, vars: &[Var]) -> Layout {
        Layout {
            columns: vars.to_vec(),
        }
    }

    /// Equality pairs `(self_col, other_col)` over the variables shared by
    /// two layouts (for natural joins).
    pub fn shared_pairs(&self, other: &Layout) -> Vec<(usize, usize)> {
        let mut pairs = Vec::new();
        for (i, v) in self.columns.iter().enumerate() {
            // first occurrence on our side only
            if self.columns[..i].contains(v) {
                continue;
            }
            if let Some(j) = other.position_of(v) {
                pairs.push((i, j));
            }
        }
        pairs
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Var {
        Var::new(s)
    }

    #[test]
    fn positions_and_membership() {
        let l = Layout::new(vec![v("x"), v("y"), v("x")]);
        assert_eq!(l.position_of(&v("x")), Some(0));
        assert_eq!(l.position_of(&v("y")), Some(1));
        assert!(l.contains(&v("y")));
        assert!(!l.contains(&v("z")));
        assert_eq!(l.positions_of([&v("y"), &v("x")]), Some(vec![1, 0]));
        assert_eq!(l.positions_of([&v("z")]), None);
    }

    #[test]
    fn shared_pairs_first_occurrence() {
        let a = Layout::new(vec![v("x"), v("y")]);
        let b = Layout::new(vec![v("y"), v("z"), v("x")]);
        assert_eq!(a.shared_pairs(&b), vec![(0, 2), (1, 0)]);
    }

    #[test]
    fn concat_and_project() {
        let a = Layout::new(vec![v("x")]);
        let b = Layout::new(vec![v("y")]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 2);
        let p = c.project(&[v("y")]);
        assert_eq!(p.columns(), &[v("y")]);
    }
}
