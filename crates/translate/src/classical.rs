//! The classical translation into relational algebra, after Codd's
//! completeness reduction [COD 72] with the usual refinements
//! [PAL 72, JS 82, CG 85].
//!
//! This is the baseline the paper improves on: the query is brought into
//! **prenex form**, the **cartesian product of the ranges of all
//! variables** is built, the matrix is applied in disjunctive normal form
//! (unions of selection/semi-join/complement-join chains over the
//! product), and quantifiers are eliminated innermost-first — projections
//! for ∃, **divisions** for ∀.
//!
//! As [DAY 83] observed and the paper quotes, "this cartesian product
//! usually retains much more tuples than needed and these tuples are
//! eliminated too late, when divisions are finally performed" — the
//! E-CART experiment measures exactly that against the improved
//! translation.
//!
//! One deliberate kindness to the baseline: when every DNF conjunct has a
//! positive atom mentioning a variable, that variable's range is the union
//! of those atoms' projections (the [JS 82]-style refinement) rather than
//! the whole database domain; the domain is used otherwise.

use crate::TranslateError;
use gq_algebra::{AlgebraExpr, BoolExpr, Operand, Predicate};
use gq_calculus::{Atom, Formula, NameGen, Term, Var};
use gq_storage::Database;
use std::collections::BTreeMap;

/// Quantifier kind in a prenex prefix.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Quant {
    Exists,
    Forall,
}

/// The classical (baseline) translator.
pub struct ClassicalTranslator<'db> {
    db: &'db Database,
    governor: Option<gq_governor::Governor>,
}

impl<'db> ClassicalTranslator<'db> {
    /// Create a translator resolving relation schemas against `db`.
    pub fn new(db: &'db Database) -> Self {
        ClassicalTranslator { db, governor: None }
    }

    /// Attach a resource governor: the cancel token / deadline is polled
    /// at the reduction's per-variable and per-conjunct steps.
    pub fn with_governor(mut self, governor: gq_governor::Governor) -> Self {
        self.governor = Some(governor);
        self
    }

    fn check_governor(&self) -> Result<(), TranslateError> {
        if let Some(g) = &self.governor {
            g.check("translate")?;
        }
        Ok(())
    }

    /// Translate an open query. Returns the answer variables in name order
    /// and a plan whose columns follow that order.
    pub fn translate_open(&self, f: &Formula) -> Result<(Vec<Var>, AlgebraExpr), TranslateError> {
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        let expr = self.reduce(f, &free)?;
        Ok((free, expr))
    }

    /// Translate a closed query: the reduction runs to a 0-ary relation
    /// holding the empty tuple iff the query is true.
    pub fn translate_closed(&self, f: &Formula) -> Result<BoolExpr, TranslateError> {
        let expr = self.reduce(f, &[])?;
        Ok(BoolExpr::NonEmpty(expr))
    }

    /// Codd's reduction: prenex prefix + matrix over the product of all
    /// ranges, then innermost-first quantifier elimination.
    fn reduce(&self, f: &Formula, free: &[Var]) -> Result<AlgebraExpr, TranslateError> {
        let mut gen = NameGen::new();
        let desugared = desugar(&f.standardize_apart(&mut gen));
        let (prefix, matrix) = prenex(&desugared);

        // Column layout: free variables first (name order), then prefix
        // variables outermost → innermost.
        let mut columns: Vec<Var> = free.to_vec();
        for (_, vs) in &prefix {
            columns.extend(vs.iter().cloned());
        }

        // The matrix DNF drives both range selection and the literal
        // chains below.
        let matrix_dnf = dnf(&nnf(&matrix, true));

        // The cartesian product of every variable's range.
        let mut expr: Option<AlgebraExpr> = None;
        for v in &columns {
            self.check_governor()?;
            let range = self.range_of(v, &matrix_dnf)?;
            expr = Some(match expr {
                None => range,
                Some(e) => e.product(range),
            });
        }
        let product = expr.unwrap_or_else(|| {
            // No variables at all: a ground matrix over the 0-ary unit.
            // Inserting the empty tuple into a fresh 0-ary relation cannot
            // collide or mismatch arity, so the result is ignorable.
            let mut unit = gq_storage::Relation::intermediate(0);
            let _ = unit.insert(gq_storage::Tuple::new(vec![]));
            AlgebraExpr::Literal(unit)
        });

        // Matrix in DNF, each conjunct a chain over the product; union.
        let positions: BTreeMap<Var, usize> = columns
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), i))
            .collect();
        let mut applied: Option<AlgebraExpr> = None;
        for conjunct in &matrix_dnf {
            self.check_governor()?;
            let mut e = product.clone();
            for literal in conjunct {
                e = self.apply_literal(e, literal, &positions)?;
            }
            applied = Some(match applied {
                None => e,
                Some(a) => a.union(e),
            });
        }
        let mut result = applied.unwrap_or(product);

        // Quantifier elimination, innermost first (rightmost columns).
        let mut arity = columns.len();
        for (quant, vs) in prefix.iter().rev() {
            for v in vs.iter().rev() {
                let col = arity - 1;
                debug_assert_eq!(columns[col], *v);
                match quant {
                    Quant::Exists => {
                        result = result.project((0..col).collect());
                    }
                    Quant::Forall => {
                        let range = self.range_of(v, &matrix_dnf)?;
                        result = result.divide(range, vec![(col, 0)]);
                    }
                }
                arity -= 1;
                columns.pop();
            }
        }
        Ok(result)
    }

    /// The range of a variable. Sound refinement over the raw database
    /// domain ([JS 82]-style): if every DNF conjunct contains a *positive*
    /// atom literal mentioning the variable, its range is the union of
    /// those atoms' projections (any satisfying assignment satisfies some
    /// conjunct, hence appears in that conjunct's positive atom).
    /// Otherwise the database domain is the only safe range.
    fn range_of(
        &self,
        v: &Var,
        matrix_dnf: &[Vec<Formula>],
    ) -> Result<AlgebraExpr, TranslateError> {
        let mut parts: Vec<AlgebraExpr> = Vec::new();
        for conjunct in matrix_dnf {
            let mut found = None;
            for literal in conjunct {
                if let Formula::Atom(atom) = literal {
                    if let Some(pos) = atom.terms.iter().position(|t| t.as_var() == Some(v)) {
                        self.check_atom(atom)?;
                        found = Some(AlgebraExpr::relation(&atom.relation).project(vec![pos]));
                        break;
                    }
                }
            }
            match found {
                Some(e) => {
                    if !parts.contains(&e) {
                        parts.push(e);
                    }
                }
                None => return Ok(AlgebraExpr::Literal(self.db.domain())),
            }
        }
        let mut it = parts.into_iter();
        match it.next() {
            None => Ok(AlgebraExpr::Literal(self.db.domain())),
            Some(first) => Ok(it.fold(first, |a, b| a.union(b))),
        }
    }

    fn check_atom(&self, a: &Atom) -> Result<(), TranslateError> {
        let rel = self
            .db
            .relation(&a.relation)
            .map_err(|_| TranslateError::UnknownRelation(a.relation.clone()))?;
        if rel.arity() != a.arity() {
            return Err(TranslateError::ArityMismatch {
                relation: a.relation.clone(),
                expected: rel.arity(),
                actual: a.arity(),
            });
        }
        Ok(())
    }

    /// Apply one literal of a DNF conjunct to the product expression.
    fn apply_literal(
        &self,
        e: AlgebraExpr,
        literal: &Formula,
        positions: &BTreeMap<Var, usize>,
    ) -> Result<AlgebraExpr, TranslateError> {
        let (inner, positive) = match literal {
            Formula::Not(g) => (&**g, false),
            g => (g, true),
        };
        match inner {
            Formula::Atom(a) => {
                self.check_atom(a)?;
                // Build the probe side: σ for constants and repeated vars.
                let mut preds: Vec<Predicate> = Vec::new();
                let mut on: Vec<(usize, usize)> = Vec::new();
                let mut seen: BTreeMap<&Var, usize> = BTreeMap::new();
                for (i, t) in a.terms.iter().enumerate() {
                    match t {
                        Term::Const(c) => preds.push(Predicate::col_const(
                            i,
                            gq_calculus::CompareOp::Eq,
                            c.clone(),
                        )),
                        Term::Var(var) => {
                            if let Some(&first) = seen.get(var) {
                                preds.push(Predicate::col_col(
                                    first,
                                    gq_calculus::CompareOp::Eq,
                                    i,
                                ));
                            } else {
                                seen.insert(var, i);
                                let col = *positions.get(var).ok_or_else(|| {
                                    TranslateError::Unsupported {
                                        context: "classical literal".into(),
                                        subformula: literal.to_string(),
                                    }
                                })?;
                                on.push((col, i));
                            }
                        }
                    }
                }
                let mut probe = AlgebraExpr::relation(&a.relation);
                if !preds.is_empty() {
                    probe = probe.select(Predicate::and_all(preds));
                }
                Ok(if positive {
                    e.semi_join(probe, on)
                } else {
                    e.complement_join(probe, on)
                })
            }
            Formula::Compare(c) => {
                let operand = |t: &Term| -> Result<Operand, TranslateError> {
                    match t {
                        Term::Const(v) => Ok(Operand::Const(v.clone())),
                        Term::Var(v) => {
                            positions.get(v).map(|&p| Operand::Col(p)).ok_or_else(|| {
                                TranslateError::Unsupported {
                                    context: "classical comparison".into(),
                                    subformula: c.to_string(),
                                }
                            })
                        }
                    }
                };
                let op = if positive { c.op } else { c.op.negated() };
                Ok(e.select(Predicate::Cmp {
                    left: operand(&c.left)?,
                    op,
                    right: operand(&c.right)?,
                }))
            }
            other => Err(TranslateError::Unsupported {
                context: "classical matrix literal".into(),
                subformula: other.to_string(),
            }),
        }
    }
}

/// Remove ⇒ and ⇔ everywhere (the classical reduction works on ¬∧∨
/// matrices).
fn desugar(f: &Formula) -> Formula {
    match f {
        Formula::Implies(a, b) => Formula::or(Formula::not(desugar(a)), desugar(b)),
        Formula::Iff(a, b) => {
            let (da, db) = (desugar(a), desugar(b));
            Formula::and(
                Formula::or(Formula::not(da.clone()), db.clone()),
                Formula::or(Formula::not(db), da),
            )
        }
        Formula::Not(g) => Formula::not(desugar(g)),
        Formula::And(a, b) => Formula::and(desugar(a), desugar(b)),
        Formula::Or(a, b) => Formula::or(desugar(a), desugar(b)),
        Formula::Exists(vs, g) => Formula::exists(vs.clone(), desugar(g)),
        Formula::Forall(vs, g) => Formula::forall(vs.clone(), desugar(g)),
        leaf => leaf.clone(),
    }
}

/// Prenex normal form: pull all quantifiers to the front (the formula must
/// be standardized apart). Returns the prefix (outermost first) and the
/// quantifier-free matrix.
fn prenex(f: &Formula) -> (Vec<(Quant, Vec<Var>)>, Formula) {
    match f {
        Formula::Exists(vs, g) => {
            let (mut pfx, m) = prenex(g);
            pfx.insert(0, (Quant::Exists, vs.clone()));
            (pfx, m)
        }
        Formula::Forall(vs, g) => {
            let (mut pfx, m) = prenex(g);
            pfx.insert(0, (Quant::Forall, vs.clone()));
            (pfx, m)
        }
        Formula::Not(g) => {
            let (pfx, m) = prenex(g);
            let flipped = pfx
                .into_iter()
                .map(|(q, vs)| {
                    (
                        match q {
                            Quant::Exists => Quant::Forall,
                            Quant::Forall => Quant::Exists,
                        },
                        vs,
                    )
                })
                .collect();
            (flipped, Formula::not(m))
        }
        Formula::And(a, b) => {
            let (mut pa, ma) = prenex(a);
            let (pb, mb) = prenex(b);
            pa.extend(pb);
            (pa, Formula::and(ma, mb))
        }
        Formula::Or(a, b) => {
            let (mut pa, ma) = prenex(a);
            let (pb, mb) = prenex(b);
            pa.extend(pb);
            (pa, Formula::or(ma, mb))
        }
        leaf => (vec![], leaf.clone()),
    }
}

/// Negation normal form of a quantifier-free formula.
fn nnf(f: &Formula, positive: bool) -> Formula {
    match f {
        Formula::Not(g) => nnf(g, !positive),
        Formula::And(a, b) => {
            if positive {
                Formula::and(nnf(a, true), nnf(b, true))
            } else {
                Formula::or(nnf(a, false), nnf(b, false))
            }
        }
        Formula::Or(a, b) => {
            if positive {
                Formula::or(nnf(a, true), nnf(b, true))
            } else {
                Formula::and(nnf(a, false), nnf(b, false))
            }
        }
        leaf => {
            if positive {
                leaf.clone()
            } else {
                Formula::not(leaf.clone())
            }
        }
    }
}

/// Disjunctive normal form of an NNF quantifier-free formula: a list of
/// conjuncts, each a list of literals.
fn dnf(f: &Formula) -> Vec<Vec<Formula>> {
    match f {
        Formula::Or(a, b) => {
            let mut d = dnf(a);
            d.extend(dnf(b));
            d
        }
        Formula::And(a, b) => {
            let da = dnf(a);
            let db = dnf(b);
            let mut out = Vec::with_capacity(da.len() * db.len());
            for ca in &da {
                for cb in &db {
                    let mut c = ca.clone();
                    c.extend(cb.iter().cloned());
                    out.push(c);
                }
            }
            out
        }
        leaf => vec![vec![leaf.clone()]],
    }
}
