//! The improved translation into relational algebra (§3).
//!
//! Translates canonical-form calculus queries compositionally, following
//! the paper's producer/filter scheme:
//!
//! * producers (ranges) become scans/joins;
//! * positive atom filters become **semi-joins**, negated atom filters
//!   become **complement-joins** (Definition 6) — never join-plus-
//!   difference;
//! * nested existential subqueries become semi-joins against the
//!   subquery's plan when its producers cover the correlation variables
//!   (Proposition 4 cases 1/2a/3/4), and *correlated joins* otherwise
//!   (case 2b);
//! * negated existential subqueries whose producers do not cover the
//!   correlation variables use **division** — the only case where division
//!   is unavoidable (case 5);
//! * disjunctive filters become chains of **constrained outer-joins**
//!   (Definition 7, Proposition 5);
//! * closed queries become boolean combinations of **non-emptiness tests**
//!   (§3.2).
//!
//! One soundness refinement over the paper (documented in DESIGN.md):
//! Proposition 4 case 5 as printed divides by the *context-independent*
//! projection of the divisor range, which is only correct when that range
//! shares no variables with the outer query. The translator uses division
//! exactly in that sound situation and otherwise falls back to a correct
//! correlated join/complement-join plan. The division plan also handles
//! the empty-divisor (vacuous ∀) case exactly, via a complement-join
//! guard, which the paper glosses over.

use crate::{Layout, TranslateError};
use gq_algebra::{AlgebraExpr, BoolExpr, Constraint, Operand, Predicate};
use gq_calculus::{
    check_restricted_open, split_producer_filter, Atom, CompareOp, Comparison, Formula, Term, Var,
};
use gq_storage::Database;
use std::collections::BTreeSet;

/// An intermediate translation: an algebra expression plus the variables
/// its columns hold.
type Typed = (Layout, AlgebraExpr);

/// Result of translating a filter into a standalone *test*: the context is
/// then restricted by a (semi/complement) join against the test relation,
/// or by a division plan.
enum Test {
    /// `E ⋉ expr` (positive) or `E ⊼ expr` (negative) on `cvars`.
    Membership {
        cvars: Vec<Var>,
        expr: AlgebraExpr,
        positive: bool,
    },
    /// Proposition 4 case 5 (`∀z̄ divisor ⇒ g`): `g_aligned` carries the
    /// columns `[cvars…, z̄…]`. Applied either with the division operator
    /// or with the complement-join rewrite, per [`DivisionMode`].
    Division {
        cvars: Vec<Var>,
        g_aligned: AlgebraExpr,
        divisor: AlgebraExpr,
    },
}

/// How Proposition 4 case 5 (`∀z̄ T ⇒ G` with uncorrelated T) is planned.
///
/// The paper keeps the division operator for this one case but notes it
/// can be "rewritten in terms of difference or complement-join"; both
/// forms are provided (and compared by the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DivisionMode {
    /// `E ⋉ π_C(G ÷ D)`, with a complement-join guard for the
    /// vacuous-divisor case.
    #[default]
    Divide,
    /// Division-free: `E ⊼_C π_C((π_C(E) × D) ⊼ G)` — candidates crossed
    /// with the divisor, missing G-pairs are violators. Handles the
    /// vacuous case without a guard (an empty divisor yields no
    /// candidates, hence no violators).
    ComplementJoin,
}

/// The improved (paper) translator.
pub struct ImprovedTranslator<'db> {
    db: &'db Database,
    division_mode: DivisionMode,
    cost_ordering: bool,
    governor: Option<gq_governor::Governor>,
}

impl<'db> ImprovedTranslator<'db> {
    /// Create a translator resolving relation schemas against `db`.
    pub fn new(db: &'db Database) -> Self {
        ImprovedTranslator {
            db,
            division_mode: DivisionMode::default(),
            cost_ordering: false,
            governor: None,
        }
    }

    /// Attach a resource governor: the cancel token / deadline is polled
    /// at every translation recursion step.
    pub fn with_governor(mut self, governor: gq_governor::Governor) -> Self {
        self.governor = Some(governor);
        self
    }

    fn check_governor(&self) -> Result<(), TranslateError> {
        if let Some(g) = &self.governor {
            g.check("translate")?;
        }
        Ok(())
    }

    /// Select how universal quantifications (case 5) are planned.
    pub fn with_division_mode(mut self, mode: DivisionMode) -> Self {
        self.division_mode = mode;
        self
    }

    /// Order a block's producers by estimated cardinality (smallest first,
    /// preferring connected joins over products) instead of syntactic
    /// order — the cost-model step the paper's §4 leaves open. Off by
    /// default to keep plans paper-faithful.
    pub fn with_cost_ordering(mut self, enabled: bool) -> Self {
        self.cost_ordering = enabled;
        self
    }

    /// Translate an open query (free variables = answer variables, in name
    /// order). The input should be in canonical form; non-canonical but
    /// restricted inputs are handled on a best-effort basis.
    pub fn translate_open(&self, f: &Formula) -> Result<(Vec<Var>, AlgebraExpr), TranslateError> {
        let free: Vec<Var> = f.free_vars().into_iter().collect();
        if free.is_empty() {
            return Err(TranslateError::Unsupported {
                context: "open query".into(),
                subformula: format!("{f} (closed — use translate_closed)"),
            });
        }
        let (_, expr) = self.translate_open_aligned(f, &free)?;
        Ok((free, expr))
    }

    fn translate_open_aligned(&self, f: &Formula, free: &[Var]) -> Result<Typed, TranslateError> {
        // Definition 3 case 2: disjunction of open queries → union.
        if let Formula::Or(a, b) = f {
            if !a.free_vars().is_empty() {
                let (_, ea) = self.translate_open_aligned(a, free)?;
                let (_, eb) = self.translate_open_aligned(b, free)?;
                return Ok((Layout::new(free.to_vec()), ea.union(eb)));
            }
        }
        let target: BTreeSet<Var> = free.iter().cloned().collect();
        let outer = BTreeSet::new();
        let Some(pf) = split_producer_filter(f, &target, &outer) else {
            // Produce the precise diagnostic.
            check_restricted_open(f)?;
            return Err(TranslateError::Unsupported {
                context: "open query".into(),
                subformula: f.to_string(),
            });
        };
        match self.translate_block(&pf.producers, &pf.filters, &outer)? {
            Some((lay, expr)) => {
                let positions = lay
                    .positions_of(free.iter())
                    .ok_or_else(|| TranslateError::internal("producers cover free variables"))?;
                Ok((Layout::new(free.to_vec()), expr.project(positions)))
            }
            None => Err(TranslateError::Unsupported {
                context: "open query".into(),
                subformula: format!("{f} (unresolvable correlation at top level)"),
            }),
        }
    }

    /// Translate a closed (yes/no) query to a boolean plan (§3.2).
    pub fn translate_closed(&self, f: &Formula) -> Result<BoolExpr, TranslateError> {
        self.check_governor()?;
        match f {
            Formula::Not(g) => Ok(BoolExpr::not(self.translate_closed(g)?)),
            Formula::And(a, b) => Ok(BoolExpr::and(
                self.translate_closed(a)?,
                self.translate_closed(b)?,
            )),
            Formula::Or(a, b) => Ok(BoolExpr::or(
                self.translate_closed(a)?,
                self.translate_closed(b)?,
            )),
            Formula::Exists(vs, body) => {
                let target: BTreeSet<Var> = vs.iter().cloned().collect();
                let outer = BTreeSet::new();
                let Some(pf) = split_producer_filter(body, &target, &outer) else {
                    // The split failing normally means the query is not
                    // restricted; when the restriction check nevertheless
                    // passes, report the unsupported shape instead of
                    // panicking on the missing diagnostic.
                    return Err(match gq_calculus::check_restricted_closed(f) {
                        Err(e) => TranslateError::Unrestricted(e),
                        Ok(()) => TranslateError::Unsupported {
                            context: "closed query".into(),
                            subformula: f.to_string(),
                        },
                    });
                };
                match self.translate_block(&pf.producers, &pf.filters, &outer)? {
                    Some((_, expr)) => Ok(BoolExpr::NonEmpty(expr)),
                    None => Err(TranslateError::Unsupported {
                        context: "closed query".into(),
                        subformula: f.to_string(),
                    }),
                }
            }
            Formula::Atom(a) => {
                if a.terms.iter().any(Term::is_var) {
                    return Err(TranslateError::Unsupported {
                        context: "closed query".into(),
                        subformula: format!("{f} (atom with free variables)"),
                    });
                }
                let (_, expr) = self.translate_atom(a)?;
                Ok(BoolExpr::NonEmpty(expr))
            }
            Formula::Compare(c) => match (c.left.as_const(), c.right.as_const()) {
                (Some(l), Some(r)) => Ok(BoolExpr::Const(c.op.eval(l, r))),
                _ => Err(TranslateError::Unsupported {
                    context: "closed query".into(),
                    subformula: f.to_string(),
                }),
            },
            Formula::Forall(..) | Formula::Implies(..) | Formula::Iff(..) => {
                Err(TranslateError::Unsupported {
                    context: "closed query (expected canonical form)".into(),
                    subformula: f.to_string(),
                })
            }
        }
    }

    /// Translate a producer/filter block: join the producers, then apply
    /// each filter. Returns `None` if a filter references variables that
    /// only an *enclosing* context could supply (the caller then falls back
    /// to a correlated plan).
    fn translate_block(
        &self,
        producers: &[Formula],
        filters: &[Formula],
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Typed>, TranslateError> {
        // Every translation recursion cycle passes through here, so this
        // is the cooperative cancellation point for the translate phase.
        self.check_governor()?;
        let mut translated: Vec<Typed> = Vec::with_capacity(producers.len());
        for p in producers {
            let vars: BTreeSet<Var> = p.free_vars().difference(outer).cloned().collect();
            translated.push(self.translate_range(p, &vars, outer)?);
        }
        let mut acc = if self.cost_ordering && translated.len() > 1 {
            match self.join_by_cost(translated) {
                Some(acc) => acc,
                None => return Ok(None),
            }
        } else {
            let mut it = translated.into_iter();
            match it.next() {
                Some(first) => it.fold(first, join_natural),
                None => return Ok(None),
            }
        };
        for filt in filters {
            match self.apply_filter(acc, filt, outer)? {
                Some(next) => acc = next,
                None => return Ok(None),
            }
        }
        Ok(Some(acc))
    }

    /// Greedy cost-ordered join of a block's producers: start from the
    /// smallest estimate, repeatedly join the smallest producer sharing a
    /// variable with the accumulated plan (falling back to the smallest
    /// remaining when none connects).
    fn join_by_cost(&self, mut parts: Vec<Typed>) -> Option<Typed> {
        let cost = |t: &Typed| gq_algebra::estimate(&t.1, self.db);
        let start = parts
            .iter()
            .enumerate()
            .min_by(|a, b| cost(a.1).total_cmp(&cost(b.1)))
            .map(|(i, _)| i)?;
        let mut acc = parts.swap_remove(start);
        while !parts.is_empty() {
            let connected = |t: &Typed| !acc.0.shared_pairs(&t.0).is_empty();
            let Some(next) = parts
                .iter()
                .enumerate()
                .filter(|(_, t)| connected(t))
                .min_by(|a, b| cost(a.1).total_cmp(&cost(b.1)))
                .map(|(i, _)| i)
                .or_else(|| {
                    parts
                        .iter()
                        .enumerate()
                        .min_by(|a, b| cost(a.1).total_cmp(&cost(b.1)))
                        .map(|(i, _)| i)
                })
            else {
                break; // unreachable: `parts` is non-empty here
            };
            let t = parts.swap_remove(next);
            acc = join_natural(acc, t);
        }
        Some(acc)
    }

    /// Translate a range formula (Definition 1) to an expression carrying
    /// all its variables (including correlation variables from `outer`).
    fn translate_range(
        &self,
        f: &Formula,
        target: &BTreeSet<Var>,
        outer: &BTreeSet<Var>,
    ) -> Result<Typed, TranslateError> {
        match f {
            Formula::Atom(a) => self.translate_atom(a),
            Formula::And(..) => {
                let Some(pf) = split_producer_filter(f, target, outer) else {
                    return Err(TranslateError::Unsupported {
                        context: "range".into(),
                        subformula: f.to_string(),
                    });
                };
                match self.translate_block(&pf.producers, &pf.filters, outer)? {
                    Some(t) => Ok(t),
                    None => Err(TranslateError::Unsupported {
                        context: "range (correlated filter inside a range)".into(),
                        subformula: f.to_string(),
                    }),
                }
            }
            Formula::Or(a, b) => {
                let (la, ea) = self.translate_range(a, target, outer)?;
                let (lb, eb) = self.translate_range(b, target, outer)?;
                // Align the right branch to the left's column order.
                let positions = lb.positions_of(la.columns().iter()).ok_or_else(|| {
                    TranslateError::Unsupported {
                        context: "range disjunction (mismatched variables)".into(),
                        subformula: f.to_string(),
                    }
                })?;
                Ok((la, ea.union(eb.project(positions))))
            }
            Formula::Exists(ys, r) => {
                let mut wider = target.clone();
                wider.extend(ys.iter().cloned());
                let (lr, er) = self.translate_range(r, &wider, outer)?;
                // Project the ∃-variables away (Definition 1 condition 5:
                // "existential quantifications in ranges correspond to
                // projections").
                let keep: Vec<Var> = lr
                    .columns()
                    .iter()
                    .filter(|v| !ys.contains(v))
                    .cloned()
                    .collect();
                let mut kept_unique: Vec<Var> = Vec::new();
                for v in keep {
                    if !kept_unique.contains(&v) {
                        kept_unique.push(v);
                    }
                }
                let positions = lr
                    .positions_of(kept_unique.iter())
                    .ok_or_else(|| TranslateError::internal("columns of own layout"))?;
                Ok((Layout::new(kept_unique), er.project(positions)))
            }
            _ => Err(TranslateError::Unsupported {
                context: "range".into(),
                subformula: f.to_string(),
            }),
        }
    }

    /// Translate an atom to a scan with selections for constants and
    /// repeated variables, projected onto its distinct variables.
    fn translate_atom(&self, a: &Atom) -> Result<Typed, TranslateError> {
        let rel = self
            .db
            .relation(&a.relation)
            .map_err(|_| TranslateError::UnknownRelation(a.relation.clone()))?;
        if rel.arity() != a.arity() {
            return Err(TranslateError::ArityMismatch {
                relation: a.relation.clone(),
                expected: rel.arity(),
                actual: a.arity(),
            });
        }
        let mut preds: Vec<Predicate> = Vec::new();
        let mut vars: Vec<Var> = Vec::new();
        let mut positions: Vec<usize> = Vec::new();
        for (i, t) in a.terms.iter().enumerate() {
            match t {
                Term::Const(c) => preds.push(Predicate::col_const(i, CompareOp::Eq, c.clone())),
                Term::Var(v) => match a.terms[..i].iter().position(|u| u.as_var() == Some(v)) {
                    Some(first) => preds.push(Predicate::col_col(first, CompareOp::Eq, i)),
                    None => {
                        vars.push(v.clone());
                        positions.push(i);
                    }
                },
            }
        }
        let mut expr = AlgebraExpr::relation(&a.relation);
        if !preds.is_empty() {
            expr = expr.select(Predicate::and_all(preds));
        }
        if positions.len() != a.arity() {
            expr = expr.project(positions);
        }
        Ok((Layout::new(vars), expr))
    }

    /// Apply one filter to a context expression. `Ok(None)` means the
    /// filter needs variables only an enclosing context can supply.
    fn apply_filter(
        &self,
        ctx: Typed,
        filter: &Formula,
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Typed>, TranslateError> {
        let (lay, expr) = ctx;
        match filter {
            Formula::Compare(c) => match self.comparison_predicate(c, &lay) {
                Some(p) => Ok(Some((lay, expr.select(p)))),
                None => Ok(None),
            },
            Formula::Or(..) => self.apply_disjunctive_filter((lay, expr), filter, outer),
            // A conjunctive filter (e.g. `¬q(x) ∧ ¬r(x,x)`, produced by
            // De Morgan inside a disjunct): apply each conjunct in turn.
            Formula::And(..) => {
                let conjuncts: Vec<Formula> = gq_calculus::flatten_and(filter)
                    .into_iter()
                    .cloned()
                    .collect();
                let mut acc = (lay, expr);
                for c in &conjuncts {
                    match self.apply_filter(acc, c, outer)? {
                        Some(next) => acc = next,
                        None => return Ok(None),
                    }
                }
                Ok(Some(acc))
            }
            _ => {
                match self.translate_test(filter, &lay, outer)? {
                    Some(test) => Ok(Some(apply_test((lay, expr), test, self.division_mode)?)),
                    None => {
                        // Correlated fallback (Proposition 4 case 2b and
                        // the correlated-∀ generalization of case 5).
                        self.apply_correlated((lay, expr), filter, outer)
                    }
                }
            }
        }
    }

    fn comparison_predicate(&self, c: &Comparison, lay: &Layout) -> Option<Predicate> {
        let operand = |t: &Term| -> Option<Operand> {
            match t {
                Term::Const(v) => Some(Operand::Const(v.clone())),
                Term::Var(v) => lay.position_of(v).map(Operand::Col),
            }
        };
        Some(Predicate::Cmp {
            left: operand(&c.left)?,
            op: c.op,
            right: operand(&c.right)?,
        })
    }

    /// Translate a (non-disjunctive, non-comparison) filter into a
    /// standalone test, if possible.
    fn translate_test(
        &self,
        d: &Formula,
        available: &Layout,
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Test>, TranslateError> {
        match d {
            Formula::Not(inner) => {
                Ok(self.translate_test(inner, available, outer)?.map(|t| {
                    match t {
                        Test::Membership {
                            cvars,
                            expr,
                            positive,
                        } => Test::Membership {
                            cvars,
                            expr,
                            positive: !positive,
                        },
                        // translate_test never produces Division (that
                        // shape is detected on the negated form in
                        // apply_correlated), so nothing to negate here.
                        Test::Division { .. } => {
                            unreachable!("Division tests are built only in apply_correlated")
                        }
                    }
                }))
            }
            Formula::Atom(a) => {
                let avars = a.vars();
                if !available.contains_all(avars.iter()) {
                    return Ok(None);
                }
                let (alay, aexpr) = self.translate_atom(a)?;
                let cvars: Vec<Var> = alay.columns().to_vec();
                Ok(Some(Test::Membership {
                    cvars,
                    expr: aexpr,
                    positive: true,
                }))
            }
            // A conjunctive filter that is itself a range with filters
            // (e.g. the disjunct `student(x) ∧ makes(x,PhD)`).
            Formula::And(..) => {
                let vars: BTreeSet<Var> = d.free_vars();
                if !available.contains_all(vars.iter()) {
                    return Ok(None);
                }
                // All free vars are correlation vars here; the "range" view
                // treats them as produced by the disjunct itself.
                let Some(pf) = split_producer_filter(d, &vars, outer) else {
                    return Ok(None);
                };
                match self.translate_block(&pf.producers, &pf.filters, outer)? {
                    Some((blay, bexpr)) => {
                        let cvars: Vec<Var> = vars.iter().cloned().collect();
                        let positions = blay
                            .positions_of(cvars.iter())
                            .ok_or_else(|| TranslateError::internal("block covers its vars"))?;
                        Ok(Some(Test::Membership {
                            cvars,
                            expr: bexpr.project(positions),
                            positive: true,
                        }))
                    }
                    None => Ok(None),
                }
            }
            Formula::Exists(zs, body) => {
                let cvars_set: BTreeSet<Var> = d.free_vars();
                if !available.contains_all(cvars_set.iter()) {
                    return Ok(None);
                }
                let target: BTreeSet<Var> = zs.iter().cloned().collect();
                // Variables of enclosing scopes act as constants *only if*
                // the subquery's own producers bind them; otherwise the
                // standalone attempt fails and the caller correlates.
                let Some(pf) = split_producer_filter(body, &target, &cvars_set) else {
                    return Err(TranslateError::Unrestricted(unrestricted_diag(d)));
                };
                match self.translate_block(&pf.producers, &pf.filters, &cvars_set)? {
                    Some((blay, bexpr)) => {
                        if !blay.contains_all(cvars_set.iter()) {
                            return Ok(None); // case 2b: needs correlation
                        }
                        let cvars: Vec<Var> = cvars_set.into_iter().collect();
                        let positions = blay.positions_of(cvars.iter()).ok_or_else(|| {
                            TranslateError::internal("layout covers the context vars it contains")
                        })?;
                        Ok(Some(Test::Membership {
                            cvars,
                            expr: bexpr.project(positions),
                            positive: true,
                        }))
                    }
                    None => Ok(None),
                }
            }
            _ => Ok(None),
        }
    }

    /// Correlated fallback: join the context with the subquery's producers,
    /// apply its filters in the extended layout, and project back.
    fn apply_correlated(
        &self,
        ctx: Typed,
        filter: &Formula,
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Typed>, TranslateError> {
        match filter {
            Formula::Exists(zs, body) => {
                let (lay, expr) = ctx;
                let matched = self.correlated_matches((lay.clone(), expr), zs, body, outer)?;
                let Some((mlay, mexpr)) = matched else {
                    return Ok(None);
                };
                // Rows of the context satisfying ∃z̄ body: project back.
                let positions = mlay
                    .positions_of(lay.columns().iter())
                    .ok_or_else(|| TranslateError::internal("context columns preserved"))?;
                Ok(Some((lay, mexpr.project(positions))))
            }
            Formula::Not(inner) => match &**inner {
                Formula::Exists(zs, body) => {
                    // Division (Proposition 4 case 5) when sound.
                    let (lay, expr) = ctx;
                    if let Some(t) = self.try_division_negated(&lay, zs, body)? {
                        return Ok(Some(apply_test((lay, expr), t, self.division_mode)?));
                    }
                    let matched =
                        self.correlated_matches((lay.clone(), expr.clone()), zs, body, outer)?;
                    let Some((mlay, mexpr)) = matched else {
                        return Ok(None);
                    };
                    let positions = mlay
                        .positions_of(lay.columns().iter())
                        .ok_or_else(|| TranslateError::internal("context columns preserved"))?;
                    let violators = mexpr.project(positions);
                    // E ⊼ (rows with a witness) on all columns.
                    let on: Vec<(usize, usize)> = (0..lay.arity()).map(|i| (i, i)).collect();
                    Ok(Some((lay, expr.complement_join(violators, on))))
                }
                _ => Ok(None),
            },
            _ => Ok(None),
        }
    }

    /// The rows of `ctx ⋈ producers(body)` satisfying the body's filters —
    /// the correlated-join engine behind Proposition 4 case 2b.
    fn correlated_matches(
        &self,
        ctx: Typed,
        zs: &[Var],
        body: &Formula,
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Typed>, TranslateError> {
        let (lay, expr) = ctx;
        let mut ctx_outer: BTreeSet<Var> = outer.clone();
        ctx_outer.extend(lay.columns().iter().cloned());
        let target: BTreeSet<Var> = zs.iter().cloned().collect();
        let Some(pf) = split_producer_filter(body, &target, &ctx_outer) else {
            return Err(TranslateError::Unrestricted(unrestricted_diag(body)));
        };
        let mut acc: Typed = (lay, expr);
        for p in &pf.producers {
            let vars: BTreeSet<Var> = p.free_vars().difference(&ctx_outer).cloned().collect();
            let t = self.translate_range(p, &vars, &ctx_outer)?;
            acc = join_natural(acc, t);
        }
        for filt in &pf.filters {
            match self.apply_filter(acc, filt, &ctx_outer)? {
                Some(next) => acc = next,
                None => return Ok(None),
            }
        }
        Ok(Some(acc))
    }

    /// Detect and build the sound division plan for `¬∃z̄ (T ∧ ¬g)`:
    /// the body's filters are exactly `[¬g]` with `g` an atom, `g` carries
    /// all context-correlation variables and all of z̄, and the divisor
    /// range `T` shares no variables with the context.
    fn try_division_negated(
        &self,
        lay: &Layout,
        zs: &[Var],
        body: &Formula,
    ) -> Result<Option<Test>, TranslateError> {
        let target: BTreeSet<Var> = zs.iter().cloned().collect();
        let ctx_vars: BTreeSet<Var> = lay.columns().iter().cloned().collect();
        let Some(pf) = split_producer_filter(body, &target, &ctx_vars) else {
            return Ok(None);
        };
        if pf.filters.len() != 1 {
            return Ok(None);
        }
        let Formula::Not(g) = &pf.filters[0] else {
            return Ok(None);
        };
        let Formula::Atom(g_atom) = &**g else {
            return Ok(None);
        };
        // Divisor uncorrelated with the context?
        let producer_vars: BTreeSet<Var> =
            pf.producers.iter().flat_map(|p| p.free_vars()).collect();
        if !producer_vars.is_disjoint(&ctx_vars) {
            return Ok(None);
        }
        // g must carry all of z̄ and its remaining variables must be
        // available in the context.
        let gvars = g_atom.vars();
        if !zs.iter().all(|z| gvars.contains(z)) {
            return Ok(None);
        }
        let cvars: Vec<Var> = gvars
            .iter()
            .filter(|v| !target.contains(v))
            .cloned()
            .collect();
        if !lay.contains_all(cvars.iter()) {
            return Ok(None);
        }
        // Build divisor = π_z̄(T-block) and g aligned to [cvars…, z̄…].
        let Some((dlay, dexpr)) = self.translate_block(&pf.producers, &[], &BTreeSet::new())?
        else {
            return Ok(None);
        };
        let Some(dpos) = dlay.positions_of(zs.iter()) else {
            return Ok(None);
        };
        let divisor = dexpr.project(dpos);
        let (glay, gexpr) = self.translate_atom(g_atom)?;
        let aligned: Vec<Var> = cvars.iter().chain(zs.iter()).cloned().collect();
        let gpos = glay
            .positions_of(aligned.iter())
            .ok_or_else(|| TranslateError::internal("g carries C and z̄"))?;
        Ok(Some(Test::Division {
            cvars,
            g_aligned: gexpr.project(gpos),
            divisor,
        }))
    }

    /// Proposition 5: a disjunctive filter as a chain of constrained
    /// outer-joins, with one marker column per relation-testable disjunct
    /// and plain predicates for comparison disjuncts. Falls back to a
    /// union of per-disjunct applications when a disjunct cannot be
    /// translated standalone.
    fn apply_disjunctive_filter(
        &self,
        ctx: Typed,
        filter: &Formula,
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Typed>, TranslateError> {
        let disjuncts = flatten_or(filter);
        let (lay, expr) = ctx;
        let p = lay.arity();

        enum Part {
            Probe {
                on: Vec<(usize, usize)>,
                test: AlgebraExpr,
                positive: bool,
            },
            Pred(Predicate),
        }

        let mut parts: Vec<Part> = Vec::new();
        for d in &disjuncts {
            match d {
                Formula::Compare(c) => match self.comparison_predicate(c, &lay) {
                    Some(pred) => parts.push(Part::Pred(pred)),
                    None => return Ok(None),
                },
                Formula::Not(inner) if matches!(&**inner, Formula::Compare(_)) => {
                    let Formula::Compare(c) = &**inner else {
                        unreachable!()
                    };
                    match self.comparison_predicate(c, &lay) {
                        Some(pred) => parts.push(Part::Pred(Predicate::Not(Box::new(pred)))),
                        None => return Ok(None),
                    }
                }
                _ => match self.translate_test(d, &lay, outer)? {
                    Some(Test::Membership {
                        cvars,
                        expr: test,
                        positive,
                    }) => {
                        let Some(lpos) = lay.positions_of(cvars.iter()) else {
                            return Ok(None);
                        };
                        let on: Vec<(usize, usize)> =
                            lpos.into_iter().enumerate().map(|(i, l)| (l, i)).collect();
                        parts.push(Part::Probe { on, test, positive });
                    }
                    // Division tests inside disjunctions: fall back to the
                    // union-of-applications plan.
                    Some(Test::Division { .. }) | None => {
                        return self.apply_disjunction_by_union((lay, expr), &disjuncts, outer);
                    }
                },
            }
        }

        // Chain the probes (Proposition 5): each probe is gated so tuples
        // already decided by earlier disjuncts are not probed again.
        let mut chained = expr;
        let mut marker_cols: Vec<(usize, bool)> = Vec::new(); // (col, positive)
        let mut sigma: Vec<Predicate> = Vec::new();
        let mut probe_index = 0usize;
        for part in &parts {
            match part {
                Part::Probe { on, test, positive } => {
                    let marker_col = p + probe_index;
                    // const(i): for each earlier probe k with marker m_k,
                    // positive disjunct k → require m_k = ∅ (not yet
                    // satisfied); negated disjunct k → require m_k ≠ ∅.
                    let constraint = Constraint {
                        tests: marker_cols.iter().map(|&(col, pos)| (col, pos)).collect(),
                    };
                    chained = chained.constrained_outer_join(test.clone(), on.clone(), constraint);
                    sigma.push(if *positive {
                        Predicate::NotNull(marker_col)
                    } else {
                        Predicate::IsNull(marker_col)
                    });
                    marker_cols.push((marker_col, *positive));
                    probe_index += 1;
                }
                Part::Pred(pred) => sigma.push(pred.clone()),
            }
        }
        // σ is provably non-empty here: `flatten_or` returns at least one
        // disjunct, and every disjunct either pushed a Part (each Part
        // pushes exactly one predicate above) or returned early. Even so,
        // `or_all` is now total — an empty disjunction is `false`, the
        // correct selection for "no disjunct can hold".
        debug_assert_eq!(sigma.len(), parts.len());
        debug_assert!(!sigma.is_empty(), "a disjunctive filter has disjuncts");
        let filtered = chained.select(Predicate::or_all(sigma));
        let back: Vec<usize> = (0..p).collect();
        Ok(Some((lay, filtered.project(back))))
    }

    /// Correct (but union-building) fallback for disjunctive filters whose
    /// disjuncts need correlated translation: σ_∨(E) = ∪ᵢ σ_dᵢ(E).
    fn apply_disjunction_by_union(
        &self,
        ctx: Typed,
        disjuncts: &[&Formula],
        outer: &BTreeSet<Var>,
    ) -> Result<Option<Typed>, TranslateError> {
        let (lay, expr) = ctx;
        let mut acc: Option<AlgebraExpr> = None;
        for d in disjuncts {
            let applied = self.apply_filter((lay.clone(), expr.clone()), d, outer)?;
            let Some((_, e)) = applied else {
                return Ok(None);
            };
            acc = Some(match acc {
                None => e,
                Some(a) => a.union(e),
            });
        }
        Ok(acc.map(|e| (lay, e)))
    }
}

/// Natural join of two typed expressions (product when no shared vars).
fn join_natural(a: Typed, b: Typed) -> Typed {
    let (la, ea) = a;
    let (lb, eb) = b;
    let pairs = la.shared_pairs(&lb);
    let lay = la.concat(&lb);
    let expr = if pairs.is_empty() {
        ea.product(eb)
    } else {
        ea.join(eb, pairs)
    };
    (lay, expr)
}

/// Apply a standalone test to a context.
fn apply_test(ctx: Typed, test: Test, mode: DivisionMode) -> Result<Typed, TranslateError> {
    let (lay, expr) = ctx;
    Ok(match test {
        Test::Membership {
            cvars,
            expr: test_expr,
            positive,
        } => {
            let lpos = lay
                .positions_of(cvars.iter())
                .ok_or_else(|| TranslateError::internal("test vars available in context"))?;
            let on: Vec<(usize, usize)> =
                lpos.into_iter().enumerate().map(|(i, l)| (l, i)).collect();
            let joined = if positive {
                expr.semi_join(test_expr, on)
            } else {
                expr.complement_join(test_expr, on)
            };
            (lay, joined)
        }
        Test::Division {
            cvars,
            g_aligned,
            divisor,
        } => {
            let c = cvars.len();
            let lpos = lay
                .positions_of(cvars.iter())
                .ok_or_else(|| TranslateError::internal("division vars available in context"))?;
            let on: Vec<(usize, usize)> = lpos
                .iter()
                .copied()
                .enumerate()
                .map(|(i, l)| (l, i))
                .collect();
            match mode {
                DivisionMode::Divide => {
                    // quotient = π_C(g ÷ divisor); divide the z̄ columns
                    // (which sit after the C columns in g_aligned).
                    let dz: Vec<(usize, usize)> = (0..divisor_arity_of(&divisor, c))
                        .map(|i| (c + i, i))
                        .collect();
                    let quotient = g_aligned.divide(divisor.clone(), dz);
                    // E ⋉ quotient, plus all of E when the divisor is
                    // empty (vacuous ∀).
                    let main = expr.clone().semi_join(quotient, on);
                    let vacuous = expr.complement_join(divisor, vec![]);
                    (lay, main.union(vacuous))
                }
                DivisionMode::ComplementJoin => {
                    // violators = (π_C(E) × D) ⊼ G; E ⊼_C π_C(violators).
                    let zn = divisor_arity_of(&divisor, c);
                    let candidates = expr.clone().project(lpos).product(divisor);
                    let all: Vec<(usize, usize)> = (0..c + zn).map(|i| (i, i)).collect();
                    let violators = candidates
                        .complement_join(g_aligned, all)
                        .project((0..c).collect());
                    (lay, expr.complement_join(violators, on))
                }
            }
        }
    })
}

/// The arity of a divisor expression (z̄ column count). Derivable from the
/// aligned g (total − C), avoiding a catalog lookup.
fn divisor_arity_of(_divisor: &AlgebraExpr, _c: usize) -> usize {
    // The divisor is always built as π_z̄(block), so its arity equals the
    // projection length; recover it structurally.
    match _divisor {
        AlgebraExpr::Project { positions, .. } => positions.len(),
        _ => unreachable!("divisor is always a projection"),
    }
}

/// Flatten a disjunction into its disjunct list.
fn flatten_or(f: &Formula) -> Vec<&Formula> {
    let mut out = Vec::new();
    fn walk<'a>(f: &'a Formula, out: &mut Vec<&'a Formula>) {
        if let Formula::Or(a, b) = f {
            walk(a, out);
            walk(b, out);
        } else {
            out.push(f);
        }
    }
    walk(f, &mut out);
    out
}

/// Build a `RestrictionError` diagnostic for an unrestricted subformula.
fn unrestricted_diag(f: &Formula) -> gq_calculus::RestrictionError {
    gq_calculus::RestrictionError::UnrestrictedExistential {
        vars: f.free_vars().into_iter().collect(),
        subformula: f.to_string(),
    }
}
