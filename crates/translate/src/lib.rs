//! # gq-translate — calculus → algebra translation (§3)
//!
//! Two translators from (canonical-form) calculus queries into the extended
//! relational algebra of `gq-algebra`:
//!
//! * [`ImprovedTranslator`] — the paper's contribution: producer/filter
//!   plans with complement-joins for negation (Definition 6,
//!   Proposition 4), constrained outer-joins for disjunctive filters
//!   (Definition 7, Proposition 5), non-emptiness tests for closed queries
//!   (§3.2), and division only in the single unavoidable case
//!   (Proposition 4 case 5);
//! * [`ClassicalTranslator`] — the Codd-style baseline the paper improves
//!   on: prenex form, a cartesian product of all variable ranges, DNF
//!   matrix application, projections for ∃ and divisions for ∀.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

mod classical;
mod error;
mod improved;
mod layout;
mod shape;

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod equivalence_tests;
#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod query_fuzz;

pub use classical::ClassicalTranslator;
pub use error::TranslateError;
pub use improved::{DivisionMode, ImprovedTranslator};
pub use layout::Layout;
pub use shape::PlanShape;
