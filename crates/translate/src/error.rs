//! Translation errors.

use gq_calculus::RestrictionError;
use std::fmt;

/// Errors raised while translating calculus to algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The query is not restricted (Definitions 2/3) — no range covers some
    /// quantified or free variable.
    Unrestricted(RestrictionError),
    /// An atom references a relation missing from the catalog.
    UnknownRelation(String),
    /// An atom's arity differs from the stored relation's.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Stored arity.
        expected: usize,
        /// Atom arity.
        actual: usize,
    },
    /// A subformula shape the translator does not support (reported rather
    /// than silently mistranslated).
    Unsupported {
        /// What was being translated.
        context: String,
        /// Rendering of the subformula.
        subformula: String,
    },
    /// The resource governor interrupted translation (cancellation,
    /// deadline, or a depth budget).
    Governor(gq_governor::GovernorError),
    /// An internal translator invariant did not hold — a translator bug,
    /// surfaced as an error instead of a panic so a malformed plan can
    /// never take the process down.
    Internal(String),
}

impl TranslateError {
    /// Shorthand for reporting a violated internal invariant.
    pub(crate) fn internal(invariant: impl Into<String>) -> Self {
        TranslateError::Internal(invariant.into())
    }
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unrestricted(e) => write!(f, "query is not restricted: {e}"),
            TranslateError::UnknownRelation(r) => write!(f, "unknown relation `{r}`"),
            TranslateError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom over `{relation}` has arity {actual}, relation has {expected}"
            ),
            TranslateError::Unsupported {
                context,
                subformula,
            } => write!(
                f,
                "unsupported shape while translating {context}: `{subformula}`"
            ),
            TranslateError::Governor(e) => write!(f, "{e}"),
            TranslateError::Internal(inv) => {
                write!(f, "internal translator invariant violated: {inv}")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

impl From<RestrictionError> for TranslateError {
    fn from(e: RestrictionError) -> Self {
        TranslateError::Unrestricted(e)
    }
}

impl From<gq_governor::GovernorError> for TranslateError {
    fn from(e: gq_governor::GovernorError) -> Self {
        TranslateError::Governor(e)
    }
}
