//! Cross-translator equivalence tests.
//!
//! Every query is evaluated three ways — improved translation (§3),
//! classical translation (Codd reduction), and the Fig. 1 nested-loop
//! interpreter — and the answers must agree. This validates Proposition 4
//! (all five cases), Proposition 5, and the end-to-end pipeline, on both
//! fixed paper examples and randomized databases.

use crate::{ClassicalTranslator, ImprovedTranslator};
use gq_algebra::Evaluator;
use gq_calculus::parse;
use gq_pipeline::PipelineEvaluator;
use gq_rewrite::canonicalize;
use gq_storage::{Database, Relation, Schema, Tuple, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Evaluate an arbitrary (possibly open) query under all three strategies
/// and assert agreement. Returns the improved answer for further checks.
fn assert_equivalent(db: &Database, text: &str) -> Relation {
    let raw = parse(text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
    let canonical = canonicalize(&raw).unwrap_or_else(|e| panic!("canonicalize {text}: {e}"));

    if raw.is_closed() {
        let imp = ImprovedTranslator::new(db)
            .translate_closed(&canonical)
            .unwrap_or_else(|e| panic!("improved {text}: {e}\ncanonical: {canonical}"));
        let ev = Evaluator::new(db);
        let imp_ans = imp.eval(&ev).unwrap();

        let cls = ClassicalTranslator::new(db)
            .translate_closed(&raw)
            .unwrap_or_else(|e| panic!("classical {text}: {e}"));
        let cls_ans = cls.eval(&Evaluator::new(db)).unwrap();

        let loop_ans = PipelineEvaluator::new(db)
            .eval_closed(&canonical)
            .unwrap_or_else(|e| panic!("pipeline {text}: {e}\ncanonical: {canonical}"));

        assert_eq!(imp_ans, cls_ans, "improved vs classical on {text}");
        assert_eq!(imp_ans, loop_ans, "improved vs nested-loop on {text}");

        let mut r = Relation::intermediate(0);
        if imp_ans {
            r.insert(Tuple::new(vec![])).unwrap();
        }
        r
    } else {
        let (vars_i, imp) = ImprovedTranslator::new(db)
            .translate_open(&canonical)
            .unwrap_or_else(|e| panic!("improved {text}: {e}\ncanonical: {canonical}"));
        let imp_ans = Evaluator::new(db).eval(&imp).unwrap();

        let (vars_c, cls) = ClassicalTranslator::new(db)
            .translate_open(&raw)
            .unwrap_or_else(|e| panic!("classical {text}: {e}"));
        let cls_ans = Evaluator::new(db).eval(&cls).unwrap();
        assert_eq!(vars_i, vars_c, "answer variables on {text}");

        let (_, loop_ans) = PipelineEvaluator::new(db)
            .eval_open(&canonical)
            .unwrap_or_else(|e| panic!("pipeline {text}: {e}\ncanonical: {canonical}"));

        assert!(
            imp_ans.set_eq(&cls_ans),
            "improved vs classical on {text}:\nimproved: {imp_ans}\nclassical: {cls_ans}\nplan: {imp}"
        );
        assert!(
            imp_ans.set_eq(&loop_ans),
            "improved vs nested-loop on {text}:\nimproved: {imp_ans}\nnested-loop: {loop_ans}\nplan: {imp}"
        );
        imp_ans
    }
}

/// The running university database used by the paper's examples.
type RelationSpec = (&'static str, Vec<&'static str>, Vec<Vec<&'static str>>);

fn uni_db() -> Database {
    let mut db = Database::new();
    let specs: Vec<RelationSpec> = vec![
        (
            "student",
            vec!["name"],
            vec![vec!["ann"], vec!["bob"], vec!["eve"], vec!["joe"]],
        ),
        ("prof", vec!["name"], vec![vec!["kim"], vec!["lou"]]),
        (
            "lecture",
            vec!["name", "dept"],
            vec![
                vec!["db", "cs"],
                vec!["os", "cs"],
                vec!["alg", "math"],
                vec!["top", "math"],
            ],
        ),
        (
            "attends",
            vec!["student", "lecture"],
            vec![
                vec!["ann", "db"],
                vec!["ann", "os"],
                vec!["bob", "db"],
                vec!["eve", "alg"],
                vec!["eve", "top"],
                vec!["joe", "db"],
                vec!["joe", "alg"],
            ],
        ),
        (
            "enrolled",
            vec!["student", "dept"],
            vec![
                vec!["ann", "math"],
                vec!["bob", "cs"],
                vec!["eve", "math"],
                vec!["joe", "cs"],
            ],
        ),
        (
            "speaks",
            vec!["person", "lang"],
            vec![
                vec!["ann", "french"],
                vec!["bob", "german"],
                vec!["kim", "french"],
                vec!["lou", "english"],
            ],
        ),
        (
            "makes",
            vec!["person", "deg"],
            vec![vec!["ann", "PhD"], vec!["eve", "PhD"]],
        ),
        (
            "member",
            vec!["person", "dept"],
            vec![vec!["kim", "cs"], vec!["lou", "math"], vec!["ann", "cs"]],
        ),
        (
            "skill",
            vec!["person", "topic"],
            vec![vec!["kim", "math"], vec!["ann", "db"], vec!["bob", "db"]],
        ),
    ];
    for (name, attrs, rows) in specs {
        db.create_relation(name, Schema::new(attrs).unwrap())
            .unwrap();
        for row in rows {
            let t: Tuple = row.iter().map(Value::str).collect();
            db.insert(name, t).unwrap();
        }
    }
    db
}

// ---------------------------------------------------------------- fixed

#[test]
fn open_conjunctive() {
    let r = assert_equivalent(&uni_db(), "student(x) & attends(x,\"db\")");
    assert_eq!(r.len(), 3);
}

#[test]
fn open_negated_filter_complement_join() {
    // §3.1 Q₂ shape: member(x,z) ∧ ¬skill(x,db)
    let r = assert_equivalent(&uni_db(), "member(x,z) & !skill(x,\"db\")");
    assert_eq!(r.len(), 2); // kim/cs, lou/math
}

#[test]
fn closed_existential() {
    assert_equivalent(&uni_db(), "exists x. student(x) & attends(x,\"db\")");
    assert_equivalent(&uni_db(), "exists x. student(x) & attends(x,\"nope\")");
}

#[test]
fn closed_universal_every_student_attends() {
    assert_equivalent(&uni_db(), "forall x. student(x) -> exists y. attends(x,y)");
    assert_equivalent(&uni_db(), "forall x. student(x) -> attends(x,\"db\")");
}

#[test]
fn prop4_case1_nested_positive() {
    // ∃y attends(x,y) ∧ ∃d (lecture(y,d) ∧ enrolled(x,d)):
    // students attending a lecture of a department they're enrolled in.
    assert_equivalent(
        &uni_db(),
        "exists y. attends(x,y) & (exists d. lecture(y,d) & enrolled(x,d))",
    );
}

#[test]
fn prop4_case2a_nested_negated_atom() {
    // ∃y attends(x,y) ∧ ∃d (lecture(y,d) ∧ ¬enrolled(x,d))
    assert_equivalent(
        &uni_db(),
        "exists y. attends(x,y) & (exists d. lecture(y,d) & !enrolled(x,d))",
    );
}

#[test]
fn prop4_case2b_correlated_producer() {
    // inner producer lecture(y,d) does not mention x; ¬enrolled(x,d) does:
    // the correlated-join path.
    assert_equivalent(
        &uni_db(),
        "attends(x,y) & (exists d. lecture(y,d) & !enrolled(x,d))",
    );
}

#[test]
fn prop4_case3_negated_subquery() {
    // students with no attendance in a math lecture
    assert_equivalent(
        &uni_db(),
        "student(x) & !(exists y. attends(x,y) & lecture(y,\"math\"))",
    );
}

#[test]
fn prop4_case4_complement_join_instead_of_division() {
    // every lecture x attends is a cs lecture:
    // student(x) ∧ ¬∃y (attends(x,y) ∧ ¬lecture(y,cs))
    let r = assert_equivalent(
        &uni_db(),
        "student(x) & !(exists y. attends(x,y) & !lecture(y,\"cs\"))",
    );
    // ann (db, os), bob (db) — eve and joe attend math lectures.
    assert_eq!(r.len(), 2);
}

#[test]
fn prop4_case5_division() {
    // x attends ALL cs lectures: student(x) ∧ ∀y lecture(y,cs) ⇒ attends(x,y)
    let r = assert_equivalent(
        &uni_db(),
        "student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))",
    );
    assert_eq!(r.len(), 1); // ann
}

#[test]
fn prop4_case5_division_plan_is_used() {
    // The improved plan for the all-cs-lectures query must actually use
    // division (claim C3: case 5 is the one unavoidable use).
    let db = uni_db();
    let raw = parse("student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))").unwrap();
    let canonical = canonicalize(&raw).unwrap();
    let (_, plan) = ImprovedTranslator::new(&db)
        .translate_open(&canonical)
        .unwrap();
    assert!(plan.uses_division(), "expected division in: {plan}");
    assert!(
        !plan.uses_product(),
        "no cartesian product expected: {plan}"
    );
}

#[test]
fn prop4_cases_1_to_4_avoid_division() {
    let db = uni_db();
    for text in [
        "exists y. attends(x,y) & (exists d. lecture(y,d) & enrolled(x,d))",
        "exists y. attends(x,y) & (exists d. lecture(y,d) & !enrolled(x,d))",
        "student(x) & !(exists y. attends(x,y) & lecture(y,\"math\"))",
        "student(x) & !(exists y. attends(x,y) & !lecture(y,\"cs\"))",
    ] {
        let canonical = canonicalize(&parse(text).unwrap()).unwrap();
        let (_, plan) = ImprovedTranslator::new(&db)
            .translate_open(&canonical)
            .unwrap();
        assert!(
            !plan.uses_division(),
            "unexpected division for {text}: {plan}"
        );
        assert!(
            !plan.uses_product(),
            "unexpected product for {text}: {plan}"
        );
    }
}

#[test]
fn disjunctive_filter_outer_joins() {
    // §2.3 Q₁: PhD student or professor speaking french or german.
    let r = assert_equivalent(
        &uni_db(),
        "((student(x) & makes(x,\"PhD\")) | prof(x)) \
         & (speaks(x,\"french\") | speaks(x,\"german\"))",
    );
    assert_eq!(r.len(), 2); // ann (PhD, french), kim (prof, french)
}

#[test]
fn disjunctive_filter_with_negation_fig4() {
    // Q₂ of §3.3: P(x) ∧ (¬T(x) ∨ U(x)) over the university relations.
    assert_equivalent(
        &uni_db(),
        "student(x) & (!enrolled(x,\"cs\") | skill(x,\"db\"))",
    );
}

#[test]
fn three_way_disjunctive_filter() {
    assert_equivalent(
        &uni_db(),
        "student(x) & (skill(x,\"db\") | speaks(x,\"german\") | makes(x,\"PhD\"))",
    );
}

#[test]
fn disjunctive_filter_with_comparison() {
    assert_equivalent(&uni_db(), "enrolled(x,d) & (d = \"cs\" | skill(x,\"db\"))");
}

#[test]
fn quantified_disjunct_in_filter() {
    // filter disjunct is itself a quantified property:
    // speaks french, or attends every cs lecture.
    assert_equivalent(
        &uni_db(),
        "student(x) & (speaks(x,\"french\") | (forall y. lecture(y,\"cs\") -> attends(x,y)))",
    );
}

#[test]
fn closed_boolean_combination() {
    // §3.2's example structure: conjunction of two closed queries.
    assert_equivalent(
        &uni_db(),
        "(exists x. student(x) & (forall y. lecture(y,\"db\") -> attends(x,y))) \
         & (forall z1. student(z1) -> exists z2. attends(z1,z2))",
    );
}

#[test]
fn paper_intro_query_q() {
    // §3.2 Q: a PhD student enrolled outside cs attending a cs lecture.
    assert_equivalent(
        &uni_db(),
        "exists x,y. enrolled(x,y) & y != \"cs\" & makes(x,\"PhD\") \
         & (exists z. lecture(z,\"cs\") & attends(x,z))",
    );
}

#[test]
fn open_disjunction_of_queries() {
    assert_equivalent(
        &uni_db(),
        "(student(x) & attends(x,\"alg\")) | (student(x) & attends(x,\"os\"))",
    );
}

#[test]
fn projection_range_query() {
    assert_equivalent(
        &uni_db(),
        "(exists y. attends(x,y)) & !enrolled(x,\"math\")",
    );
}

#[test]
fn universal_negated_range_closed() {
    assert_equivalent(&uni_db(), "forall x. !(student(x) & skill(x,\"ai\"))");
    assert_equivalent(&uni_db(), "forall x. !(student(x) & skill(x,\"db\"))");
}

#[test]
fn vacuous_universal_is_true() {
    // No "physics" lectures: ∀y lecture(y,physics) ⇒ attends(x,y) holds
    // for every student (the empty-divisor case the paper glosses over).
    let r = assert_equivalent(
        &uni_db(),
        "student(x) & (forall y. lecture(y,\"physics\") -> attends(x,y))",
    );
    assert_eq!(r.len(), 4, "all students qualify vacuously");
}

// ------------------------------------------------------------- randomized

/// Build a random database over a fixed schema.
fn random_db(seed: u64, scale: usize) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    db.create_relation("p", Schema::new(vec!["a"]).unwrap())
        .unwrap();
    db.create_relation("q", Schema::new(vec!["a"]).unwrap())
        .unwrap();
    db.create_relation("r", Schema::new(vec!["a", "b"]).unwrap())
        .unwrap();
    db.create_relation("s", Schema::new(vec!["a", "b"]).unwrap())
        .unwrap();
    let n = scale.max(2) as i64;
    for _ in 0..scale {
        let _ = db.insert("p", Tuple::new(vec![Value::Int(rng.gen_range(0..n))]));
        let _ = db.insert("q", Tuple::new(vec![Value::Int(rng.gen_range(0..n))]));
        for name in ["r", "s"] {
            let _ = db.insert(
                name,
                Tuple::new(vec![
                    Value::Int(rng.gen_range(0..n)),
                    Value::Int(rng.gen_range(0..n)),
                ]),
            );
        }
    }
    db
}

/// A pool of restricted query shapes exercising every Proposition 4 case,
/// disjunctive filters, and boolean combinations.
const QUERY_POOL: &[&str] = &[
    "p(x) & !q(x)",
    "p(x) & (exists y. r(x,y) & !s(x,y))",
    "p(x) & !(exists y. r(x,y) & s(x,y))",
    "p(x) & !(exists y. r(x,y) & !s(x,y))",
    "p(x) & (forall y. q(y) -> r(x,y))",
    "p(x) & (forall y. r(x,y) -> s(x,y))",
    "r(x,y) & (exists z. s(y,z) & !r(x,z))",
    "p(x) & (q(x) | (exists y. r(x,y)))",
    "p(x) & (!q(x) | s(x,x))",
    "(p(x) & q(x)) | (p(x) & (exists y. s(x,y)))",
    "exists x. p(x) & (forall y. r(x,y) -> q(y))",
    "forall x. p(x) -> exists y. r(x,y)",
    "forall x. !(p(x) & q(x) & (exists y. r(x,y) & s(x,y)))",
    "p(x) & (exists y. r(x,y) & q(y) & (exists z. s(y,z)))",
    "r(x,y) & !s(y,x) & (q(x) | q(y))",
];

/// Both division modes of the improved translator agree (the paper's
/// remark that division can be "rewritten in terms of difference or
/// complement-join").
#[test]
fn division_modes_agree() {
    use crate::DivisionMode;
    let db = uni_db();
    for text in [
        "student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))",
        "student(x) & (forall y. lecture(y,\"physics\") -> attends(x,y))", // vacuous
        "exists x. student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))",
    ] {
        let canonical = canonicalize(&parse(text).unwrap()).unwrap();
        let results: Vec<Relation> = [DivisionMode::Divide, DivisionMode::ComplementJoin]
            .into_iter()
            .map(|mode| {
                let tr = ImprovedTranslator::new(&db).with_division_mode(mode);
                let ev = Evaluator::new(&db);
                if canonical.is_closed() {
                    let truth = tr.translate_closed(&canonical).unwrap().eval(&ev).unwrap();
                    let mut r = Relation::intermediate(0);
                    if truth {
                        r.insert(Tuple::new(vec![])).unwrap();
                    }
                    r
                } else {
                    let (_, plan) = tr.translate_open(&canonical).unwrap();
                    ev.eval(&plan).unwrap()
                }
            })
            .collect();
        assert!(results[0].set_eq(&results[1]), "modes differ on `{text}`");
    }
    // And the complement-join mode really is division-free.
    let canonical =
        canonicalize(&parse("student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))").unwrap())
            .unwrap();
    let tr = ImprovedTranslator::new(&db).with_division_mode(DivisionMode::ComplementJoin);
    let (_, plan) = tr.translate_open(&canonical).unwrap();
    assert!(!plan.uses_division(), "{plan}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// All three strategies agree on random databases for every query in
    /// the pool.
    #[test]
    fn strategies_agree_on_random_databases(
        seed in 0u64..10_000,
        scale in 2usize..18,
        qi in 0usize..QUERY_POOL.len(),
    ) {
        let db = random_db(seed, scale);
        assert_equivalent(&db, QUERY_POOL[qi]);
    }

    /// The division-free mode agrees with the division mode on random
    /// databases for ∀-queries (including empty-divisor instances).
    #[test]
    fn division_modes_agree_random(seed in 0u64..10_000, scale in 2usize..15) {
        use crate::DivisionMode;
        let db = random_db(seed, scale);
        for text in ["p(x) & (forall y. q(y) -> r(x,y))", "p(x) & (forall y. q(y) -> s(x,y))"] {
            let canonical = canonicalize(&parse(text).unwrap()).unwrap();
            let a = {
                let tr = ImprovedTranslator::new(&db);
                let (_, plan) = tr.translate_open(&canonical).unwrap();
                Evaluator::new(&db).eval(&plan).unwrap()
            };
            let b = {
                let tr = ImprovedTranslator::new(&db)
                    .with_division_mode(DivisionMode::ComplementJoin);
                let (_, plan) = tr.translate_open(&canonical).unwrap();
                Evaluator::new(&db).eval(&plan).unwrap()
            };
            prop_assert!(a.set_eq(&b), "on `{}`", text);
        }
    }
}

/// Proposition 5 end-to-end, n ≤ 5 disjuncts with arbitrary negation
/// patterns: the improved translation (constrained outer-join chains)
/// agrees with the nested-loop oracle on random databases.
#[test]
fn prop5_nary_random_negation_patterns() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..60 {
        let n = rng.gen_range(1..=5usize);
        let negs: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
        // database: p plus t1..tn
        let mut db = Database::new();
        db.create_relation("p", Schema::anonymous(1)).unwrap();
        let rows = rng.gen_range(3..25usize);
        for i in 0..rows {
            db.insert("p", Tuple::new(vec![Value::Int(i as i64)]))
                .unwrap();
        }
        for k in 1..=n {
            let name = format!("t{k}");
            db.create_relation(&name, Schema::anonymous(1)).unwrap();
            for i in 0..rows {
                if rng.gen_bool(0.4) {
                    db.insert(&name, Tuple::new(vec![Value::Int(i as i64)]))
                        .unwrap();
                }
            }
        }
        let disjuncts: Vec<String> = (1..=n)
            .map(|k| {
                if negs[k - 1] {
                    format!("!t{k}(x)")
                } else {
                    format!("t{k}(x)")
                }
            })
            .collect();
        let text = format!("p(x) & ({})", disjuncts.join(" | "));
        assert_equivalent(&db, &text);
        let _ = trial;
    }
}

/// Disjunctive filters over binary relations and mixed-arity correlation
/// (beyond the paper's unary exposition): still agree everywhere.
#[test]
fn prop5_binary_relation_disjuncts() {
    let db = uni_db();
    assert_equivalent(
        &db,
        "enrolled(x,d) & (member(x,d) | skill(x,\"db\") | !speaks(x,\"french\"))",
    );
    assert_equivalent(
        &db,
        "attends(x,y) & (lecture(y,\"cs\") | enrolled(x,\"math\"))",
    );
}

/// Cost-ordered producer joins (the §4 cost-model extension) preserve
/// answers on the random query pool and the fuzz generator.
#[test]
fn cost_ordering_preserves_answers() {
    for seed in 0..40u64 {
        let (f, db) = crate::query_fuzz::gen_query(seed + 5000, 8);
        let canonical = canonicalize(&f).unwrap();
        if f.is_closed() {
            continue; // covered by the open cases; closed plumbing identical
        }
        let (_, plain) = ImprovedTranslator::new(&db)
            .translate_open(&canonical)
            .unwrap();
        let (_, ordered) = ImprovedTranslator::new(&db)
            .with_cost_ordering(true)
            .translate_open(&canonical)
            .unwrap();
        let a = Evaluator::new(&db).eval(&plain).unwrap();
        let b = Evaluator::new(&db).eval(&ordered).unwrap();
        assert!(
            a.set_eq(&b),
            "seed {seed}: {canonical}\nplain: {plain}\nordered: {ordered}"
        );
    }
}
