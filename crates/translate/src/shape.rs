//! Plan-shape facts: what a translation produced, structurally.
//!
//! The paper's claims C2/C3 are *shape* claims — the improved translation
//! avoids cartesian products everywhere and division in all but one case —
//! so the observability layer records the operator census of every
//! translated plan alongside its timings.

use gq_algebra::AlgebraExpr;
use gq_obs::TraceBuilder;

/// The structural census of one algebra plan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanShape {
    /// `(operator kind, count)` pairs in first-encounter (preorder) order.
    pub operator_counts: Vec<(&'static str, usize)>,
    /// Total operator nodes.
    pub nodes: usize,
    /// Does the plan contain a division? (Claim C3.)
    pub uses_division: bool,
    /// Does the plan contain a cartesian product? (Claim C2.)
    pub uses_product: bool,
}

/// Short kind name of an operator node (stable: used as counter keys).
fn kind(e: &AlgebraExpr) -> &'static str {
    match e {
        AlgebraExpr::Relation(_) => "scan",
        AlgebraExpr::Literal(_) => "literal",
        AlgebraExpr::Select { .. } => "select",
        AlgebraExpr::Project { .. } => "project",
        AlgebraExpr::GroupCount { .. } => "group-count",
        AlgebraExpr::Product { .. } => "product",
        AlgebraExpr::Join { .. } => "join",
        AlgebraExpr::SemiJoin { .. } => "semi-join",
        AlgebraExpr::ComplementJoin { .. } => "complement-join",
        AlgebraExpr::Division { .. } => "division",
        AlgebraExpr::Union { .. } => "union",
        AlgebraExpr::Difference { .. } => "difference",
        AlgebraExpr::LeftOuterJoin { .. } => "outer-join",
        AlgebraExpr::ConstrainedOuterJoin { .. } => "constrained-outer-join",
    }
}

impl PlanShape {
    /// Take the census of a plan.
    pub fn of(plan: &AlgebraExpr) -> PlanShape {
        let mut shape = PlanShape::default();
        fn walk(e: &AlgebraExpr, shape: &mut PlanShape) {
            let k = kind(e);
            match shape.operator_counts.iter_mut().find(|(n, _)| *n == k) {
                Some((_, c)) => *c += 1,
                None => shape.operator_counts.push((k, 1)),
            }
            shape.nodes += 1;
            for c in e.children() {
                walk(c, shape);
            }
        }
        walk(plan, &mut shape);
        shape.uses_division = plan.uses_division();
        shape.uses_product = plan.uses_product();
        shape
    }

    /// Combined census over several plans — the algebra subplans of a
    /// closed query's boolean plan
    /// ([`BoolExpr::algebra_exprs`](gq_algebra::BoolExpr::algebra_exprs)).
    pub fn of_roots<'a>(roots: impl IntoIterator<Item = &'a AlgebraExpr>) -> PlanShape {
        let mut combined = PlanShape::default();
        for root in roots {
            let s = PlanShape::of(root);
            for (k, c) in s.operator_counts {
                match combined.operator_counts.iter_mut().find(|(n, _)| *n == k) {
                    Some((_, total)) => *total += c,
                    None => combined.operator_counts.push((k, c)),
                }
            }
            combined.nodes += s.nodes;
            combined.uses_division |= s.uses_division;
            combined.uses_product |= s.uses_product;
        }
        combined
    }

    /// Count of one operator kind (0 when absent).
    pub fn count(&self, kind: &str) -> usize {
        self.operator_counts
            .iter()
            .find(|(n, _)| *n == kind)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Record the census into a trace: `uses_division` / `uses_product` /
    /// `plan_nodes` as facts, per-operator counts as `plan.op.*` counters.
    pub fn record_into(&self, tb: &TraceBuilder) {
        tb.fact("uses_division", self.uses_division);
        tb.fact("uses_product", self.uses_product);
        tb.fact("plan_nodes", self.nodes);
        for &(k, c) in &self.operator_counts {
            tb.incr(&format!("plan.op.{k}"), c as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(n: &str) -> Box<AlgebraExpr> {
        Box::new(AlgebraExpr::Relation(n.into()))
    }

    #[test]
    fn census_counts_every_node() {
        let plan = AlgebraExpr::ComplementJoin {
            left: Box::new(AlgebraExpr::Product {
                left: scan("p"),
                right: scan("q"),
            }),
            right: scan("r"),
            on: vec![(0, 0)],
        };
        let shape = PlanShape::of(&plan);
        assert_eq!(shape.nodes, 5);
        assert_eq!(shape.count("scan"), 3);
        assert_eq!(shape.count("complement-join"), 1);
        assert_eq!(shape.count("division"), 0);
        assert!(shape.uses_product);
        assert!(!shape.uses_division);
    }

    #[test]
    fn record_into_emits_facts_and_counters() {
        let plan = AlgebraExpr::Division {
            left: scan("p"),
            right: scan("q"),
            on: vec![(1, 0)],
        };
        let tb = TraceBuilder::new();
        PlanShape::of(&plan).record_into(&tb);
        let t = tb.finish("q", "classical");
        assert_eq!(t.counters["plan.op.division"], 1);
        assert_eq!(t.counters["plan.op.scan"], 2);
        assert!(t
            .facts
            .iter()
            .any(|(k, v)| k == "uses_division" && v == &gq_obs::Json::Bool(true)));
    }
}
