//! Quickstart: build a small database, ask quantified questions.
//!
//! Run with: `cargo run --example quickstart`

use gq_core::{QueryEngine, Strategy};
use gq_storage::{tuple, Database, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a database.
    let mut db = Database::new();
    db.create_relation("student", Schema::new(vec!["name"])?)?;
    db.create_relation("lecture", Schema::new(vec!["name", "dept"])?)?;
    db.create_relation("attends", Schema::new(vec!["student", "lecture"])?)?;

    for s in ["ann", "bob", "eve"] {
        db.insert("student", tuple![s])?;
    }
    for (l, d) in [("db", "cs"), ("os", "cs"), ("alg", "math")] {
        db.insert("lecture", tuple![l, d])?;
    }
    for (s, l) in [("ann", "db"), ("ann", "os"), ("bob", "db"), ("eve", "alg")] {
        db.insert("attends", tuple![s, l])?;
    }

    let engine = QueryEngine::new(db);

    // 2. An open query: who attends a cs lecture?
    let result = engine.query("student(x) & (exists y. attends(x,y) & lecture(y,\"cs\"))")?;
    println!("students attending a cs lecture:");
    for t in result.answers.sorted_tuples() {
        println!("  {t}");
    }

    // 3. A universally quantified query: who attends ALL cs lectures?
    //    (The paper's division showcase — Proposition 4 case 5.)
    let result = engine.query("student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))")?;
    println!("\nstudents attending ALL cs lectures:");
    for t in result.answers.sorted_tuples() {
        println!("  {t}");
    }

    // 4. A closed (yes/no) query with negation: is there a student
    //    attending no lecture at all?
    let result = engine.query("exists x. student(x) & !(exists y. attends(x,y))")?;
    println!("\nany student attending nothing? {}", result.is_true());

    // 5. The same query under all three strategies, with operation counts.
    println!("\nstrategy comparison (tuples read / comparisons):");
    for strategy in Strategy::ALL {
        let r = engine.query_with(
            "student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))",
            strategy,
        )?;
        println!(
            "  {:<12} answers={} reads={} comparisons={}",
            strategy.name(),
            r.len(),
            r.stats.base_tuples_read,
            r.stats.comparisons,
        );
    }

    // 6. EXPLAIN shows both processing phases of the paper.
    println!(
        "\n{}",
        engine.explain("student(x) & (forall y. lecture(y,\"cs\") -> attends(x,y))")?
    );
    Ok(())
}
