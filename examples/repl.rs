//! An interactive shell over the query engine.
//!
//! ```text
//! cargo run --example repl
//! gq> .relation student(name)
//! gq> .insert student("ann")
//! gq> .insert student("bob")
//! gq> .relation attends(student, lecture)
//! gq> .insert attends("ann", "db")
//! gq> student(x) & !(exists y. attends(x,y))
//! (bob)
//! 1 answer (improved; reads=3 comparisons=3)
//! gq> .explain exists x. student(x) & attends(x,"db")
//! gq> .strategy nested-loop
//! gq> .quit
//! ```
//!
//! Commands: `.relation name(attr, …)`, `.insert name(value, …)`,
//! `.relations`, `.view name <query>`, `.views`,
//! `.strategy improved|classical|nested-loop`,
//! `.timeout <ms|off>` (per-query deadline),
//! `.limits [output|rows <n|off>]` (show / set resource budgets),
//! `.prepare name <query>` / `.exec name` (prepared queries through the
//! plan cache), `.prepared`, `.cache [clear]` (plan-cache statistics),
//! `.explain <query>`,
//! `:analyze <query>` (execute with per-node instrumentation and render
//! the annotated plan),
//! `:events [n|clear|on|off]` (the flight recorder's recent events),
//! `:slowlog [clear|latency <ms|off>|tuples <n|off>]` (slow-query log),
//! `:export-trace <file>` (Chrome trace_event JSON for Perfetto),
//! `.load-university <n>`, `.save <file>`,
//! `.load <file>`,
//! `.open <dir>` (crash-safe durable database: WAL + checkpoints;
//! mutations survive crashes), `.checkpoint` (atomic snapshot, WAL
//! restarts empty), `.wal` (durability counters),
//! `.connect host:port` / `.disconnect` (client mode: forward every
//! line to a running `gq-server` over the framed TCP protocol),
//! `.help`, `.quit`.
//! Anything else is evaluated as a calculus query; a
//! `with recursive name(params) as (body), … in query` program defines
//! recursive materialized views and runs the trailing query.

use gq_core::{EngineOptions, PreparedQuery, QueryEngine, QueryLimits, Strategy};
use gq_server::Client;
use gq_storage::{Database, Schema, Tuple, Value};
use gq_workload::{university, UniversityScale};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

struct Repl {
    engine: QueryEngine,
    strategy: Strategy,
    /// Streaming push-based execution (`.stream on|off`, default on).
    streaming: bool,
    prepared: BTreeMap<String, PreparedQuery>,
    /// Client mode: when connected, every line is forwarded to a remote
    /// `gq-server` instead of the in-process engine.
    remote: Option<Client>,
}

fn main() {
    let mut repl = Repl {
        engine: QueryEngine::new(Database::new()),
        strategy: Strategy::Improved,
        streaming: true,
        prepared: BTreeMap::new(),
        remote: None,
    };
    println!("general-queries REPL — .help for commands");
    let stdin = io::stdin();
    loop {
        print!(
            "{}",
            if repl.remote.is_some() {
                "gq(remote)> "
            } else {
                "gq> "
            }
        );
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ".quit" || line == ".exit" {
            break;
        }
        if let Err(e) = repl.dispatch(line) {
            println!("error: {e}");
        }
    }
}

impl Repl {
    fn dispatch(&mut self, line: &str) -> Result<(), Box<dyn std::error::Error>> {
        if let Some(rest) = line.strip_prefix(".connect ") {
            let addr = rest.trim();
            let mut client = Client::connect(addr)?;
            let hello = client.send(".ping")?;
            if !hello.ok {
                return Err(format!("server refused: {}", hello.body).into());
            }
            println!("connected to {addr} — lines now run remotely (.disconnect to return)");
            self.remote = Some(client);
            return Ok(());
        }
        if line == ".disconnect" {
            match self.remote.take() {
                Some(mut client) => {
                    let _ = client.send(".close");
                    println!("disconnected — lines now run locally");
                }
                None => println!("not connected"),
            }
            return Ok(());
        }
        if let Some(client) = self.remote.as_mut() {
            // Client mode: the server speaks the same command language,
            // so forward the line verbatim and print the reply.
            match client.send(line) {
                Ok(reply) if reply.ok => {
                    if !reply.body.is_empty() {
                        println!("{}", reply.body);
                    }
                }
                Ok(reply) => match reply.retry_after_ms {
                    Some(ms) => println!(
                        "server error [{}] (retry in {ms}ms): {}",
                        reply.code, reply.body
                    ),
                    None => println!("server error [{}]: {}", reply.code, reply.body),
                },
                Err(e) => {
                    self.remote = None;
                    return Err(format!("connection lost ({e}) — back to local mode").into());
                }
            }
            return Ok(());
        }
        if let Some(rest) = line.strip_prefix(".relation ") {
            let (name, attrs) = parse_signature(rest)?;
            // Routed through the engine so a durable store WAL-logs it.
            self.engine.create_relation(name, Schema::new(attrs)?)?;
            println!("ok");
        } else if let Some(rest) = line.strip_prefix(".insert ") {
            let (name, values) = parse_signature(rest)?;
            let tuple: Tuple = values.into_iter().map(parse_value).collect();
            let fresh = self.engine.insert(&name, tuple)?;
            println!(
                "{}",
                if fresh {
                    "inserted"
                } else {
                    "duplicate (ignored)"
                }
            );
        } else if let Some(rest) = line.strip_prefix(".open ") {
            let dir = std::path::PathBuf::from(rest.trim());
            let (engine, recovery) = QueryEngine::open_durable(&dir)?;
            self.engine = engine;
            self.prepared.clear();
            println!("{recovery}");
            println!(
                "durable database at {} ({} relations, {} tuples)",
                dir.display(),
                self.engine.db().relation_names().count(),
                self.engine.db().total_tuples()
            );
        } else if line == ".checkpoint" {
            let ck = self.engine.checkpoint()?;
            println!(
                "checkpoint: generation {}, {} bytes, {} WAL record{} folded in",
                ck.generation,
                ck.snapshot_bytes,
                ck.wal_records_folded,
                if ck.wal_records_folded == 1 { "" } else { "s" },
            );
        } else if line == ".wal" {
            let Some(s) = self.engine.durability_stats() else {
                return Err("no durable database attached (.open <dir>)".into());
            };
            println!(
                "wal: {} append{} ({} bytes), {} since last checkpoint",
                s.wal_appends,
                if s.wal_appends == 1 { "" } else { "s" },
                s.wal_bytes,
                s.wal_records_since_checkpoint,
            );
            println!(
                "fsyncs: {}  checkpoints: {}  recoveries: {}  torn tails truncated: {}",
                s.fsyncs, s.checkpoints, s.recoveries, s.torn_tail_truncations
            );
        } else if let Some(rest) = line.strip_prefix(".view ") {
            let rest = rest.trim();
            let Some((name, query)) = rest.split_once(' ') else {
                return Err("usage: .view name <query>".into());
            };
            self.engine.define_view(name, query.trim())?;
            println!("view `{name}` defined");
        } else if line == ".views" {
            for v in self.engine.views().views() {
                let params: Vec<&str> = v.params.iter().map(|p| p.name()).collect();
                println!("{}({}) ≡ {}", v.name, params.join(", "), v.body);
            }
        } else if let Some(rest) = line.strip_prefix(".save ") {
            gq_storage::save(&self.engine.db(), std::path::Path::new(rest.trim()))?;
            println!("saved");
        } else if let Some(rest) = line.strip_prefix(".load ") {
            let db = gq_storage::load(std::path::Path::new(rest.trim()))?;
            println!("loaded {} tuples", db.total_tuples());
            self.engine = QueryEngine::new(db);
        } else if line == ".relations" {
            for r in self.engine.db().relations() {
                println!("{}{} — {} tuples", r.name(), r.schema(), r.len());
            }
        } else if let Some(rest) = line.strip_prefix(".strategy ") {
            self.strategy = match rest.trim() {
                "improved" => Strategy::Improved,
                "classical" => Strategy::Classical,
                "nested-loop" => Strategy::NestedLoop,
                other => return Err(format!("unknown strategy `{other}`").into()),
            };
            println!("strategy: {}", self.strategy.name());
        } else if let Some(rest) = line.strip_prefix(".threads ") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| format!("usage: .threads <n> (got `{}`)", rest.trim()))?;
            let exec = gq_core::ExecConfig::with_threads(n)
                .with_morsel_size(self.engine.exec_config().morsel_size);
            self.engine.set_exec_config(exec);
            println!(
                "exec: {} thread{} (morsel size {})",
                exec.threads,
                if exec.threads == 1 { "" } else { "s" },
                exec.morsel_size
            );
        } else if let Some(rest) = line.strip_prefix(".morsel ") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| format!("usage: .morsel <n> (got `{}`)", rest.trim()))?;
            let mut exec = self.engine.exec_config();
            exec = gq_core::ExecConfig::with_threads(exec.threads).with_morsel_size(n);
            self.engine.set_exec_config(exec);
            println!(
                "exec: morsel size {} ({} threads)",
                exec.morsel_size, exec.threads
            );
        } else if let Some(rest) = line.strip_prefix(".stream ") {
            self.streaming = match rest.trim() {
                "on" => true,
                "off" => false,
                other => return Err(format!("usage: .stream on|off (got `{other}`)").into()),
            };
            println!(
                "streaming: {}",
                if self.streaming {
                    "on (push-based pipelines, breakers only materialize)"
                } else {
                    "off (legacy executor, every operator materializes)"
                }
            );
        } else if let Some(rest) = line.strip_prefix(".timeout ") {
            let rest = rest.trim();
            let mut limits = self.engine.limits();
            if rest == "off" {
                limits.deadline = None;
                println!("timeout: off");
            } else {
                let ms: u64 = rest
                    .parse()
                    .map_err(|_| format!("usage: .timeout <ms|off> (got `{rest}`)"))?;
                limits.deadline = Some(std::time::Duration::from_millis(ms));
                println!("timeout: {ms}ms per query");
            }
            self.engine.set_limits(limits);
        } else if line == ".limits" {
            print_limits(&self.engine.limits());
        } else if let Some(rest) = line.strip_prefix(".limits ") {
            let mut limits = self.engine.limits();
            let parts: Vec<&str> = rest.split_whitespace().collect();
            match parts.as_slice() {
                [which, value] => {
                    let parsed = if *value == "off" {
                        None
                    } else {
                        Some(value.parse::<u64>().map_err(|_| {
                            format!("usage: .limits <output|rows> <n|off> (got `{value}`)")
                        })?)
                    };
                    match *which {
                        "output" => limits.max_output_tuples = parsed,
                        "rows" => limits.max_intermediate_tuples = parsed,
                        other => {
                            return Err(format!("unknown limit `{other}` (output | rows)").into())
                        }
                    }
                    self.engine.set_limits(limits);
                    print_limits(&self.engine.limits());
                }
                _ => return Err("usage: .limits [output|rows <n|off>]".into()),
            }
        } else if let Some(rest) = line.strip_prefix(".prepare ") {
            let rest = rest.trim();
            let Some((name, query)) = rest.split_once(' ') else {
                return Err("usage: .prepare name <query>".into());
            };
            let p = self
                .engine
                .prepare_with(query.trim(), self.strategy, self.options())?;
            println!("prepared `{name}` ({})", p.strategy().name());
            self.prepared.insert(name.to_string(), p);
        } else if let Some(rest) = line.strip_prefix(".exec ") {
            let name = rest.trim();
            let Some(p) = self.prepared.get(name) else {
                return Err(format!("no prepared query `{name}` (.prepare name <query>)").into());
            };
            let result = self.engine.execute(p)?;
            if result.vars.is_empty() {
                println!("{}", result.is_true());
            } else {
                for t in result.answers.sorted_tuples() {
                    println!("{t}");
                }
            }
            let s = self.engine.plan_cache_stats();
            println!(
                "{} answer{} ({}; plan cache: {} hits / {} misses)",
                result.len(),
                if result.len() == 1 { "" } else { "s" },
                p.strategy().name(),
                s.hits,
                s.misses,
            );
        } else if line == ".prepared" {
            for (name, p) in &self.prepared {
                println!("{name} [{}] ≡ {}", p.strategy().name(), p.text());
            }
        } else if line == ".cache" {
            let s = self.engine.plan_cache_stats();
            println!(
                "plan cache: {}/{} entries, ~{} bytes",
                s.entries, s.capacity, s.approx_bytes
            );
            println!(
                "hits: {}  misses: {}  evictions: {}  hit rate: {:.1}%",
                s.hits,
                s.misses,
                s.evictions,
                s.hit_rate() * 100.0
            );
        } else if line == ".cache clear" {
            self.engine.clear_plan_cache();
            println!("plan cache cleared");
        } else if let Some(rest) = line.strip_prefix(".explain ") {
            println!("{}", self.engine.explain(rest)?);
        } else if let Some(rest) = line
            .strip_prefix(":analyze ")
            .or_else(|| line.strip_prefix(".analyze "))
        {
            println!(
                "{}",
                self.engine.explain_analyze_with_options(
                    rest.trim(),
                    self.strategy,
                    self.options()
                )?
            );
        } else if line == ":events" || line.starts_with(":events ") {
            let arg = line[":events".len()..].trim();
            let j = self.engine.journal();
            match arg {
                "" => {
                    for ev in j.tail(20) {
                        println!("{}", ev.render());
                    }
                }
                "clear" => {
                    j.clear();
                    println!("journal cleared");
                }
                "on" => {
                    j.enable();
                    println!("journal: recording");
                }
                "off" => {
                    j.disable();
                    println!("journal: off (queries leave no events)");
                }
                n => {
                    let n: usize = n
                        .parse()
                        .map_err(|_| format!("usage: :events [n|clear|on|off] (got `{n}`)"))?;
                    for ev in j.tail(n) {
                        println!("{}", ev.render());
                    }
                }
            }
            println!(
                "journal: {} event{} held (capacity {}), {} recorded, {} dropped{}",
                j.len(),
                if j.len() == 1 { "" } else { "s" },
                j.capacity(),
                j.appends(),
                j.dropped(),
                if j.is_enabled() {
                    ""
                } else {
                    " — RECORDING OFF"
                },
            );
        } else if line == ":slowlog" || line.starts_with(":slowlog ") {
            let arg = line[":slowlog".len()..].trim();
            let sl = self.engine.slow_log();
            let parse_off = |v: &str| -> Result<Option<u64>, String> {
                if v == "off" {
                    Ok(None)
                } else {
                    v.parse().map(Some).map_err(|_| format!("got `{v}`"))
                }
            };
            match arg.split_whitespace().collect::<Vec<_>>().as_slice() {
                [] => {
                    for e in sl.entries() {
                        println!("{}", e.summary());
                    }
                }
                ["clear"] => {
                    sl.clear();
                    println!("slow-query log cleared");
                }
                ["latency", v] => {
                    let ms =
                        parse_off(v).map_err(|e| format!(":slowlog latency <ms|off> ({e})"))?;
                    sl.set_latency_threshold(ms.map(std::time::Duration::from_millis));
                }
                ["tuples", v] => {
                    let n = parse_off(v).map_err(|e| format!(":slowlog tuples <n|off> ({e})"))?;
                    sl.set_tuple_threshold(n);
                }
                _ => {
                    return Err(
                        "usage: :slowlog [clear | latency <ms|off> | tuples <n|off>]".into(),
                    )
                }
            }
            let show_ms = |t: Option<std::time::Duration>| {
                t.map_or_else(|| "off".to_string(), |d| format!("{}ms", d.as_millis()))
            };
            let show_n = |t: Option<u64>| t.map_or_else(|| "off".to_string(), |n| n.to_string());
            println!(
                "slow log: {} entr{} held, {} recorded, {} evicted — latency > {}, tuples > {}",
                sl.len(),
                if sl.len() == 1 { "y" } else { "ies" },
                sl.recorded(),
                sl.evicted(),
                show_ms(sl.latency_threshold()),
                show_n(sl.tuple_threshold()),
            );
        } else if let Some(rest) = line.strip_prefix(":export-trace ") {
            let path = rest.trim();
            if path.is_empty() {
                return Err("usage: :export-trace <file.json>".into());
            }
            let j = self.engine.journal();
            let n = j.len();
            std::fs::write(path, format!("{}\n", j.to_chrome_trace().pretty()))?;
            println!(
                "wrote {n} event{} to {path} — open in Perfetto (ui.perfetto.dev) \
                 or chrome://tracing",
                if n == 1 { "" } else { "s" },
            );
        } else if let Some(rest) = line.strip_prefix(".load-university") {
            let n: usize = rest.trim().parse().unwrap_or(100);
            self.engine = QueryEngine::new(university(&UniversityScale::of_size(n)));
            println!(
                "loaded university with {} students ({} tuples)",
                n,
                self.engine.db().total_tuples()
            );
        } else if line == ".help" {
            println!(
                ".relation name(attr, …)   create a relation\n\
                 .view name <query>        define a view (usable as an atom)\n\
                 .views                    list views\n\
                 .save <file> / .load <file>  persist / restore the database\n\
                 .open <dir>               attach a crash-safe durable database (WAL + checkpoints)\n\
                 .checkpoint               atomic snapshot; the WAL restarts empty\n\
                 .wal                      durability counters (appends, fsyncs, recoveries)\n\
                 .insert name(value, …)    insert a tuple (strings quoted, ints bare)\n\
                 .relations                list relations\n\
                 .strategy s               improved | classical | nested-loop\n\
                 .threads n                worker threads (1 = sequential)\n\
                 .morsel n                 tuples per morsel (default 1024)\n\
                 .stream on|off            push-based streaming pipelines (default on;\n\
                                           off = materialize every operator)\n\
                 .timeout <ms|off>         per-query deadline\n\
                 .limits [output|rows <n|off>]  show / set resource budgets\n\
                 .prepare name <query>     compile once, cache the plan\n\
                 .exec name                run a prepared query (cache hit)\n\
                 .prepared                 list prepared queries\n\
                 .cache [clear]            plan-cache statistics / reset\n\
                 .explain <query>          show both processing phases\n\
                 :analyze <query>          execute + annotated plan (EXPLAIN ANALYZE)\n\
                 :events [n|clear|on|off]  flight recorder: last n events (default 20),\n\
                                           clear the ring, or toggle recording\n\
                 :slowlog                  slow-query log entries + thresholds\n\
                 :slowlog clear            drop retained slow queries\n\
                 :slowlog latency <ms|off> arm/disarm the latency threshold\n\
                 :slowlog tuples <n|off>   arm/disarm the peak-tuples threshold\n\
                 :export-trace <file>      dump the journal as Chrome trace_event JSON\n\
                                           (load in Perfetto / chrome://tracing)\n\
                 .load-university <n>      load a generated database\n\
                 .connect host:port        client mode: forward lines to a gq-server\n\
                 .disconnect               leave client mode\n\
                 .quit                     exit\n\
                 anything else             evaluate as a calculus query"
            );
        } else if line.starts_with('.') {
            return Err(format!("unknown command `{line}` (.help)").into());
        } else {
            // A `with recursive` prelude routes through the program
            // surface, which registers the definitions as recursive
            // materialized views before running the trailing query.
            let result = if line.starts_with("with recursive") {
                self.engine
                    .query_program_with(line, self.strategy, self.options())?
            } else {
                self.engine
                    .query_with_options(line, self.strategy, self.options())?
            };
            if result.vars.is_empty() {
                println!("{}", result.is_true());
            } else {
                for t in result.answers.sorted_tuples() {
                    println!("{t}");
                }
                println!(
                    "{} answer{} ({}; reads={} comparisons={})",
                    result.len(),
                    if result.len() == 1 { "" } else { "s" },
                    self.strategy.name(),
                    result.stats.base_tuples_read,
                    result.stats.comparisons,
                );
            }
        }
        Ok(())
    }

    /// Per-query options from the REPL's toggles.
    fn options(&self) -> EngineOptions {
        EngineOptions {
            streaming: self.streaming,
            ..Default::default()
        }
    }
}

fn print_limits(l: &QueryLimits) {
    fn show(v: Option<u64>) -> String {
        v.map_or_else(|| "off".to_string(), |n| n.to_string())
    }
    println!(
        "timeout: {}",
        l.deadline
            .map_or_else(|| "off".to_string(), |d| format!("{}ms", d.as_millis()))
    );
    println!("output tuples: {}", show(l.max_output_tuples));
    println!("intermediate rows: {}", show(l.max_intermediate_tuples));
    println!("intermediate bytes: {}", show(l.max_memory_bytes));
    println!("rewrite steps: {}", show(l.max_rewrite_steps));
    println!("formula depth: {}", show(l.max_formula_depth));
    println!("plan depth: {}", show(l.max_plan_depth));
}

/// Parse `name(a, b, c)` into the name and the comma-separated parts.
fn parse_signature(text: &str) -> Result<(String, Vec<String>), Box<dyn std::error::Error>> {
    let text = text.trim();
    let open = text.find('(').ok_or("expected `name(…)`")?;
    if !text.ends_with(')') {
        return Err("expected closing `)`".into());
    }
    let name = text[..open].trim().to_string();
    let inner = &text[open + 1..text.len() - 1];
    let parts: Vec<String> = if inner.trim().is_empty() {
        vec![]
    } else {
        inner.split(',').map(|s| s.trim().to_string()).collect()
    };
    Ok((name, parts))
}

/// `"quoted"` → string, digits → integer, bare word → string.
fn parse_value(text: String) -> Value {
    let t = text.trim();
    if let Some(stripped) = t.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
        Value::str(stripped)
    } else if let Ok(n) = t.parse::<i64>() {
        Value::Int(n)
    } else {
        Value::str(t)
    }
}
