//! A tour of the paper's two-phase processing, via EXPLAIN.
//!
//! Shows, for each example query from the paper: the rewriting trace into
//! canonical form (§2), the improved algebraic plan (§3) with its
//! division/product usage, and the classical baseline plan.
//!
//! Run with: `cargo run --example explain_plans`

use gq_core::QueryEngine;
use gq_workload::{university, UniversityScale};

const TOUR: &[(&str, &str)] = &[
    (
        "Rule 4: universal quantification becomes negated existential",
        "forall x. student(x) -> exists y. attends(x,y)",
    ),
    (
        "§2.2: miniscoping moves ¬enrolled out of the ∀y scope",
        "exists x. student(x) & (forall y. lecture(y,\"d0\") -> attends(x,y) & !enrolled(x,\"d0\"))",
    ),
    (
        "§2.3: producer disjunction distributed, filter disjunction kept",
        "exists x. ((student(x) & makes(x,\"PhD\")) | prof(x)) & (speaks(x,\"lang0\") | speaks(x,\"lang1\"))",
    ),
    (
        "§3.1: negated filter becomes a complement-join, not join+difference",
        "member(x,z) & !skill(x,\"db\")",
    ),
    (
        "Prop 4 case 4: complement-join replaces division",
        "student(x) & !(exists y. attends(x,y) & !lecture(y,\"d0\"))",
    ),
    (
        "Prop 4 case 5: the one unavoidable division",
        "student(x) & (forall y. lecture(y,\"d0\") -> attends(x,y))",
    ),
    (
        "Prop 5: disjunctive filter as constrained outer-joins",
        "student(x) & (!enrolled(x,\"d0\") | skill(x,\"db\"))",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = university(&UniversityScale::of_size(50));
    let engine = QueryEngine::new(db);
    for (label, text) in TOUR {
        println!("{}", "=".repeat(72));
        println!("{label}\n");
        println!("{}", engine.explain(text)?);
    }
    Ok(())
}
