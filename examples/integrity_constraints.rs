//! General integrity constraints — the paper's motivating application.
//!
//! Registers constraints with quantifiers and disjunctions against a
//! company database, checks them with the improved translation, and prints
//! violation witnesses.
//!
//! Run with: `cargo run --example integrity_constraints`

use gq_core::{ConstraintSet, QueryEngine};
use gq_storage::{tuple, Database, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation("employee", Schema::new(vec!["name", "dept"])?)?;
    db.create_relation("manager", Schema::new(vec!["name", "dept"])?)?;
    db.create_relation("project", Schema::new(vec!["name", "dept"])?)?;
    db.create_relation("works_on", Schema::new(vec!["employee", "project"])?)?;
    db.create_relation("clearance", Schema::new(vec!["employee", "level"])?)?;

    for (e, d) in [
        ("ann", "cs"),
        ("bob", "cs"),
        ("eve", "math"),
        ("joe", "math"),
        ("kim", "cs"),
    ] {
        db.insert("employee", tuple![e, d])?;
    }
    db.insert("manager", tuple!["kim", "cs"])?;
    db.insert("manager", tuple!["zed", "math"])?; // zed is not an employee!
    for (p, d) in [("db-engine", "cs"), ("proofs", "math")] {
        db.insert("project", tuple![p, d])?;
    }
    for (e, p) in [
        ("ann", "db-engine"),
        ("bob", "db-engine"),
        ("eve", "proofs"),
        // joe works on nothing
    ] {
        db.insert("works_on", tuple![e, p])?;
    }
    db.insert("clearance", tuple!["ann", 2])?;
    db.insert("clearance", tuple!["kim", 3])?;

    let engine = QueryEngine::new(db);
    let mut constraints = ConstraintSet::new();

    // Universal constraint with nested existential.
    constraints.add(
        "managers-are-employees",
        "forall m,d. manager(m,d) -> exists d2. employee(m,d2)",
    )?;
    // Universal with a disjunctive conclusion (kept as a filter and
    // evaluated with constrained outer-joins).
    constraints.add(
        "everyone-busy-or-cleared",
        "forall e,d. employee(e,d) -> ((exists p. works_on(e,p)) | (exists l. clearance(e,l)))",
    )?;
    // Denial form: no employee may work on a project of another department
    // without clearance.
    constraints.add(
        "no-cross-dept-without-clearance",
        "!(exists e,d,p,pd. employee(e,d) & works_on(e,p) & project(p,pd) & pd != d \
          & !(exists l. clearance(e,l)))",
    )?;
    // A satisfied one: every manager manages their own department.
    constraints.add(
        "managers-manage-own-dept",
        "forall m,d. (manager(m,d) & employee(m,d)) -> employee(m,d)",
    )?;

    println!(
        "checking {} constraints…\n",
        constraints.constraints().len()
    );
    for report in constraints.check_all(&engine)? {
        if report.satisfied {
            println!("✓ {}", report.name);
        } else {
            println!("✗ {} VIOLATED", report.name);
            if let Some((vars, witnesses)) = report.witnesses {
                let names: Vec<&str> = vars.iter().map(|v| v.name()).collect();
                println!("  witnesses ({}):", names.join(", "));
                for t in witnesses.sorted_tuples() {
                    println!("    {t}");
                }
            }
        }
    }
    Ok(())
}
