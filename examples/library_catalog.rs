//! A lending-library catalog: views, integrity constraints, persistence
//! and domain closure working together on quantified queries.
//!
//! Run with: `cargo run --example library_catalog`

use gq_core::{ConstraintSet, EngineOptions, QueryEngine, Strategy};
use gq_storage::{tuple, Database, Schema};

fn build() -> Result<QueryEngine, Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation("book", Schema::new(vec!["title", "genre"])?)?;
    db.create_relation("member", Schema::new(vec!["name"])?)?;
    db.create_relation("loan", Schema::new(vec!["member", "title"])?)?;
    db.create_relation("reservation", Schema::new(vec!["member", "title"])?)?;

    for (t, g) in [
        ("dune", "scifi"),
        ("hyperion", "scifi"),
        ("emma", "classic"),
        ("ulysses", "classic"),
        ("cosmos", "science"),
    ] {
        db.insert("book", tuple![t, g])?;
    }
    for m in ["ada", "grace", "alan", "edsger"] {
        db.insert("member", tuple![m])?;
    }
    for (m, t) in [
        ("ada", "dune"),
        ("ada", "hyperion"),
        ("grace", "emma"),
        ("grace", "cosmos"),
        ("alan", "dune"),
    ] {
        db.insert("loan", tuple![m, t])?;
    }
    db.insert("reservation", tuple!["edsger", "ulysses"])?;
    db.insert("reservation", tuple!["alan", "emma"])?;
    Ok(QueryEngine::new(db))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = build()?;

    // --- Views (Definition 1 allows views as ranges) -------------------
    engine.define_view("scifi_book", "book(b, \"scifi\")")?;
    engine.define_view("borrower", "member(m) & (exists t. loan(m,t))")?;
    // a view over a view, with a universal inside:
    engine.define_view(
        "scifi_completionist",
        "member(c) & (forall b. scifi_book(b) -> loan(c,b))",
    )?;

    println!("who has borrowed every sci-fi book?");
    for t in engine
        .query("scifi_completionist(x)")?
        .answers
        .sorted_tuples()
    {
        println!("  {t}");
    }

    println!("\nactive borrowers holding no classics:");
    let r = engine.query("borrower(x) & !(exists b. loan(x,b) & book(b,\"classic\"))")?;
    for t in r.answers.sorted_tuples() {
        println!("  {t}");
    }

    // --- Integrity constraints (the paper's motivation) ----------------
    let mut constraints = ConstraintSet::new();
    constraints.add(
        "loans-are-catalogued",
        "forall m,t. loan(m,t) -> exists g. book(t,g)",
    )?;
    constraints.add(
        "no-loan-and-reservation",
        "!(exists m,t. loan(m,t) & reservation(m,t))",
    )?;
    constraints.add(
        "reservers-are-members",
        "forall m,t. reservation(m,t) -> member(m)",
    )?;
    println!("\nconstraints:");
    for report in constraints.check_all(&engine)? {
        println!(
            "  {} {}",
            if report.satisfied { "✓" } else { "✗" },
            report.name
        );
        if let Some((_, witnesses)) = report.witnesses {
            for w in witnesses.sorted_tuples() {
                println!("      violated by {w}");
            }
        }
    }

    // --- Domain closure (§2.1) ------------------------------------------
    engine.refresh_domain_view()?;
    let options = EngineOptions {
        domain_closure: true,
        ..EngineOptions::default()
    };
    // "which database values are not book titles?" — pure negation, only
    // answerable under the Domain Closure Assumption.
    let r = engine.query_with_options("!(exists g. book(x,g))", Strategy::Improved, options)?;
    println!(
        "\nvalues that are not book titles (domain closure): {} of {}",
        r.len(),
        engine.db().relation("dom")?.len()
    );

    // --- Persistence ----------------------------------------------------
    let path = std::env::temp_dir().join("library_catalog.gq");
    gq_storage::save(&engine.db(), &path)?;
    let reloaded = QueryEngine::new(gq_storage::load(&path)?);
    let check = reloaded.query("member(x) & (exists t. loan(x,t))")?;
    println!(
        "\nsaved to {} and reloaded: {} borrowers found again",
        path.display(),
        check.len()
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
