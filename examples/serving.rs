//! Concurrent serving walkthrough: an embedded `gq-server` fronting the
//! engine, mixed clients running against MVCC snapshots, admission
//! control shedding under overload, and a clean shutdown.
//!
//! ```text
//! cargo run --example serving
//! ```
//!
//! To poke at a server interactively instead, run the REPL in another
//! terminal and `.connect` to the address this example prints.

use std::sync::Arc;
use std::time::Duration;

use gq_core::QueryEngine;
use gq_server::{AdmissionConfig, Client, Server, ServerConfig};
use gq_storage::Database;

fn main() {
    // 1. An engine and a server in front of it. Port 0 = ephemeral.
    let engine = Arc::new(QueryEngine::new(Database::new()));
    let mut server = Server::start(
        engine,
        ServerConfig {
            workers: 4,
            admission: AdmissionConfig {
                max_sessions: 3,
                retry_after: Duration::from_millis(100),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("bind server");
    let addr = server.local_addr();
    println!("serving on {addr} (3 session slots, 4 workers)\n");

    // 2. One session defines schema and seeds data — the same REPL
    //    command language, framed over TCP.
    let mut admin = Client::connect(addr).expect("connect admin");
    for line in [
        ".relation student(name)",
        ".relation attends(student, lecture)",
        ".insert student(\"ann\")",
        ".insert student(\"bob\")",
        ".insert student(\"cat\")",
        ".insert attends(\"ann\", \"db\")",
        ".insert attends(\"bob\", \"db\")",
    ] {
        let r = admin.send(line).expect("admin request");
        println!("admin> {line}\n       {}", r.body);
    }

    // 3. A second session queries concurrently. Each query runs against
    //    an immutable MVCC snapshot: writers never block readers.
    let mut reader = Client::connect(addr).expect("connect reader");
    let r = reader
        .send("student(x) & !(exists y. attends(x, y))")
        .expect("reader query");
    println!("\nreader> student(x) & !(exists y. attends(x, y))");
    for line in r.body.lines() {
        println!("        {line}");
    }

    // 4. Per-session limits: the reader throttles itself; the admin
    //    session is unaffected.
    reader.send(".limits output 1").expect("set limit");
    let r = reader.send("student(x)").expect("limited query");
    println!("\nreader with output limit 1> student(x)");
    println!("        ok={} code={} {}", r.ok, r.code, r.body);

    // 5. Overload: the gate has 3 slots and 2 are taken. The third
    //    client is admitted, the fourth is shed with a retry hint.
    let mut third = Client::connect(addr).expect("connect third");
    assert!(third.send(".ping").expect("third ping").ok);
    let mut fourth = Client::connect(addr).expect("connect fourth");
    let shed = fourth.recv().expect("shed notice");
    println!(
        "\nfourth client> shed: code={} retry_after_ms={:?} ({})",
        shed.code, shed.retry_after_ms, shed.body
    );

    // 6. Orderly shutdown: sessions cancelled, threads joined.
    let _ = admin.send(".close");
    let _ = reader.send(".close");
    let _ = third.send(".close");
    drop((admin, reader, third, fourth));
    server.shutdown();
    let stats = server.stats();
    println!(
        "\nserver stats: accepted={} closed={} admitted={} shed={}",
        stats.accepted,
        stats.closed,
        stats.admission.admitted,
        stats.admission.shed_total() + stats.queue_shed,
    );
    assert_eq!(stats.admission.active, 0, "all sessions reaped");
    println!("shutdown clean — no sessions leaked");
}
