//! The paper's running examples on a generated university database,
//! with per-strategy operation counts.
//!
//! Run with: `cargo run --release --example university [students]`

use gq_core::{QueryEngine, Strategy};
use gq_workload::{university, UniversityScale};

/// The paper's example queries, adapted to the generated schema
/// (department `d0` plays "cs", `lang0` "french", `lang1` "german").
const QUERIES: &[(&str, &str)] = &[
    (
        "§2.2 Q1 (miniscope motivation)",
        "exists x. student(x) & (forall y. lecture(y,\"d0\") -> attends(x,y) & !enrolled(x,\"d0\"))",
    ),
    (
        "§2.3 Q1 (producer + filter disjunctions)",
        "exists x. ((student(x) & makes(x,\"PhD\")) | prof(x)) & (speaks(x,\"lang0\") | speaks(x,\"lang1\"))",
    ),
    (
        "§2.3 Q4 (disjunction kept in filter)",
        "exists x. prof(x) & (member(x,\"d0\") | skill(x,\"math\")) & speaks(x,\"lang0\")",
    ),
    (
        "§3.1 Q2 (complement-join)",
        "member(x,z) & !skill(x,\"db\")",
    ),
    (
        "§3.2 Q (pipelined existential)",
        "exists x,y. enrolled(x,y) & y != \"d0\" & makes(x,\"PhD\") & (exists z. lecture(z,\"d0\") & attends(x,z))",
    ),
    (
        "Prop 4 case 5 (attends all d0 lectures)",
        "student(x) & (forall y. lecture(y,\"d0\") -> attends(x,y))",
    ),
    (
        "Prop 4 case 4 (attends only d0 lectures)",
        "student(x) & !(exists y. attends(x,y) & !lecture(y,\"d0\"))",
    ),
];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let students: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let db = university(&UniversityScale::of_size(students));
    println!(
        "university database: {} students, {} total tuples\n",
        students,
        db.total_tuples()
    );
    let engine = QueryEngine::new(db);

    for (label, text) in QUERIES {
        println!("== {label}");
        println!("   {text}");
        for strategy in [Strategy::Improved, Strategy::NestedLoop] {
            let start = std::time::Instant::now();
            let r = engine.query_with(text, strategy)?;
            let elapsed = start.elapsed();
            let answer = if r.vars.is_empty() {
                format!("{}", r.is_true())
            } else {
                format!("{} tuples", r.len())
            };
            println!(
                "   {:<12} {:<12} {:>10.1?}  reads={} probes={} comparisons={} max_intermediate={}",
                strategy.name(),
                answer,
                elapsed,
                r.stats.base_tuples_read,
                r.stats.probes,
                r.stats.comparisons,
                r.stats.max_intermediate,
            );
        }
        println!();
    }
    Ok(())
}
